//! # ngram-mr — Computing n-Gram Statistics in MapReduce
//!
//! A complete Rust reproduction of Berberich & Bedathur, *"Computing
//! n-Gram Statistics in MapReduce"* (EDBT 2013), including every substrate
//! the paper runs on:
//!
//! | crate | role |
//! |-------|------|
//! | [`mapreduce`] | Hadoop-faithful single-machine MapReduce runtime (serialized shuffle, raw comparators, combiners, counters, spill-to-disk) |
//! | [`corpus`] | synthetic NYT-like / ClueWeb-like corpora plus the text preprocessing pipeline |
//! | [`kvstore`] | disk-resident key-value store (the Berkeley DB role) |
//! | [`ngrams`] | the four methods — NAÏVE, APRIORI-SCAN, APRIORI-INDEX, SUFFIX-σ — and the §VI extensions |
//! | [`serve`] | segment index + HTTP/1.1 query layer over the computed statistics |
//!
//! ## Quick start
//!
//! ```
//! use ngram_mr::prelude::*;
//!
//! // A small synthetic collection (deterministic in the seed).
//! let coll = generate(&CorpusProfile::tiny("quick", 40), 42);
//! // A simulated cluster with 4 map/reduce slots.
//! let cluster = Cluster::new(4);
//! // All n-grams of up to 5 terms occurring at least 3 times:
//! let result = Computation::new(Method::SuffixSigma, &NGramParams::new(3, 5))
//!     .input(&coll)
//!     .run(&cluster)
//!     .unwrap();
//! assert!(!result.grams.is_empty());
//! for (gram, cf) in result.grams.iter().take(5) {
//!     println!("{:>6}  {}", cf, coll.dictionary.decode(gram.terms()));
//! }
//! ```
//!
//! See the `examples/` directory for runnable scenarios (language
//! modelling, long-phrase analytics, n-gram time series) and `crates/bench`
//! for the harness that regenerates every table and figure of the paper.

pub use corpus;
pub use kvstore;
pub use mapreduce;
pub use ngrams;
pub use serve;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use corpus::{
        build_collection_from_text, generate, is_store_file, load, render_document,
        sample_fraction, save, save_store, Collection, CollectionStats, CorpusProfile,
        CorpusReader, CorpusWriter, Dictionary, Document,
    };
    pub use mapreduce::{Cluster, Counter, CounterSnapshot, JobConfig};
    pub use ngrams::{
        compute_time_series, Computation, CountMode, Gram, Method, NGramParams, NGramResult,
        OutputMode, TimeSeries,
    };
    pub use serve::{build_index, IndexOptions, StatsIndex, StatsServer};
}
