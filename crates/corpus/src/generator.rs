//! The synthetic corpus generator.
//!
//! Produces collections with the statistical structure the paper's
//! evaluation depends on (§VII-B/C):
//!
//! * Zipfian unigram distribution → the output histogram of Fig. 2 is
//!   "biased toward short and less frequent n-grams";
//! * a phrase library reused with Zipfian skew → *long* frequent n-grams
//!   exist (quotations, ingredient lists, chess openings in NYT; spam
//!   chains and stack traces in ClueWeb), which is exactly what makes the
//!   APRIORI methods struggle at large σ;
//! * lognormal sentence lengths matched to Table I's mean/stddev;
//! * optional near-duplication of documents (web mirrors/boilerplate).
//!
//! Generation is deterministic in `(profile, seed)`.

use crate::dictionary::Dictionary;
use crate::document::{Collection, Document};
use crate::lexicon::Lexicon;
use crate::profile::CorpusProfile;
use crate::store::{CorpusWriter, StoreCodec, StoreMeta, STORE_BLOCK_BYTES};
use crate::zipf::Zipf;
use mapreduce::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io;
use std::path::Path;

/// How many recent documents the near-duplication model can splice from.
/// A bounded window (instead of full lookback) is what lets document
/// generation stream with O(window) memory; web mirrors copy *recent*
/// content anyway.
const DUP_WINDOW: usize = 64;

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Lognormal sample with the given mean and standard deviation.
fn lognormal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let variance_ratio = (std * std) / (mean * mean);
    let sigma2 = (1.0 + variance_ratio).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    (mu + sigma2.sqrt() * normal(rng)).exp()
}

/// Streaming document source: yields one raw document (sentences of raw
/// word indices) at a time, holding only the RNG, the phrase library, and
/// a [`DUP_WINDOW`]-deep recent-document window for near-duplication —
/// never the corpus. Deterministic in `(profile, seed)`, so two streams
/// with the same inputs replay the identical document sequence (the
/// two-pass [`generate_store`] depends on this).
struct DocStream<'a> {
    profile: &'a CorpusProfile,
    rng: StdRng,
    unigram: Zipf,
    phrases: Vec<Vec<u32>>,
    phrase_picker: Option<Zipf>,
    /// Recent raw documents the duplication model may splice from.
    recent: VecDeque<Vec<Vec<u32>>>,
    /// Total tokens across `recent` (kept incrementally for the
    /// peak-memory witness).
    window_tokens: u64,
    doc_idx: usize,
}

impl<'a> DocStream<'a> {
    fn new(profile: &'a CorpusProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6e67_7261_6d73); // "ngrams"
        let unigram = Zipf::new(profile.vocab_size, profile.zipf_exponent);

        // ---- Phrase library. ----
        let mut phrases: Vec<Vec<u32>> = Vec::with_capacity(profile.phrase_vocab);
        for _ in 0..profile.phrase_vocab {
            let long = rng.random::<f64>() < profile.long_phrase_fraction;
            let (lo, hi) = if long {
                profile.long_phrase_len
            } else {
                profile.short_phrase_len
            };
            let len = rng.random_range(lo..=hi.max(lo + 1));
            phrases.push((0..len).map(|_| unigram.sample(&mut rng)).collect());
        }
        let phrase_picker = if profile.phrase_vocab > 0 {
            Some(Zipf::new(
                profile.phrase_vocab,
                profile.phrase_zipf_exponent,
            ))
        } else {
            None
        };
        DocStream {
            profile,
            rng,
            unigram,
            phrases,
            phrase_picker,
            recent: VecDeque::with_capacity(DUP_WINDOW + 1),
            window_tokens: 0,
            doc_idx: 0,
        }
    }

    /// Tokens resident in the duplication window.
    fn window_tokens(&self) -> u64 {
        self.window_tokens
    }

    fn next_doc(&mut self) -> Option<Vec<Vec<u32>>> {
        if self.doc_idx >= self.profile.num_docs {
            return None;
        }
        let profile = self.profile;
        let doc_idx = self.doc_idx;
        self.doc_idx += 1;

        // Web-style near-duplication: splice a chunk of a recent document.
        let mut sentences: Option<Vec<Vec<u32>>> = None;
        if doc_idx > 16 && self.rng.random::<f64>() < profile.duplicate_doc_rate {
            let src_idx = self.rng.random_range(0..self.recent.len());
            let src_len = self.recent[src_idx].len();
            if src_len > 0 {
                let start = self.rng.random_range(0..src_len);
                let take = self.rng.random_range(1..=src_len - start);
                let mut dup: Vec<Vec<u32>> = self.recent[src_idx][start..start + take].to_vec();
                // A couple of fresh sentences so duplicates are "near", not exact.
                for _ in 0..self.rng.random_range(0..3usize) {
                    dup.push(fresh_sentence(profile, &self.unigram, &mut self.rng));
                }
                sentences = Some(dup);
            }
        }
        let sentences = sentences.unwrap_or_else(|| {
            let n_sent = (profile.sentences_per_doc
                + normal(&mut self.rng) * profile.sentences_per_doc / 3.0)
                .round()
                .max(1.0) as usize;
            let mut sentences = Vec::with_capacity(n_sent);
            for _ in 0..n_sent {
                let use_phrase =
                    self.phrase_picker.is_some() && self.rng.random::<f64>() < profile.phrase_rate;
                if use_phrase {
                    let p = self.phrase_picker.as_ref().unwrap().sample(&mut self.rng) as usize;
                    let mut s = self.phrases[p].clone();
                    // Occasionally extend a quoted phrase with attribution noise.
                    if self.rng.random::<f64>() < 0.3 {
                        for _ in 0..self.rng.random_range(1..4usize) {
                            s.push(self.unigram.sample(&mut self.rng));
                        }
                    }
                    sentences.push(s);
                } else {
                    sentences.push(fresh_sentence(profile, &self.unigram, &mut self.rng));
                }
            }
            sentences
        });

        self.window_tokens += sentences.iter().map(|s| s.len() as u64).sum::<u64>();
        self.recent.push_back(sentences.clone());
        if self.recent.len() > DUP_WINDOW {
            let evicted = self.recent.pop_front().expect("window non-empty");
            self.window_tokens -= evicted.iter().map(|s| s.len() as u64).sum::<u64>();
        }
        Some(sentences)
    }
}

/// Chronological year for document `i` of `num_docs`, spread across the
/// profile's year range.
fn doc_year(profile: &CorpusProfile, i: usize) -> u16 {
    let (y_lo, y_hi) = profile.years;
    if profile.num_docs <= 1 || y_hi == y_lo {
        y_lo
    } else {
        y_lo + ((i as u64 * u64::from(y_hi - y_lo)) / (profile.num_docs as u64 - 1).max(1)) as u16
    }
}

/// Build the frequency-ranked dictionary and raw-word → term-id remap
/// from raw-word occurrence counts (paper §V).
fn build_dictionary(
    profile: &CorpusProfile,
    counts: &FxHashMap<u32, u64>,
) -> (Dictionary, FxHashMap<u32, u32>) {
    let lexicon = Lexicon::new(profile.vocab_size);
    let dictionary = Dictionary::from_counts(
        counts
            .iter()
            .map(|(&w, &f)| (lexicon.get(w).to_string(), f)),
    );
    let remap: FxHashMap<u32, u32> = counts
        .keys()
        .map(|&w| {
            (
                w,
                dictionary.id(lexicon.get(w)).expect("term just inserted"),
            )
        })
        .collect();
    (dictionary, remap)
}

/// Generate a collection from `profile`, deterministically in `seed`.
pub fn generate(profile: &CorpusProfile, seed: u64) -> Collection {
    // ---- Documents (tokens are raw word indices at this stage). ----
    let mut stream = DocStream::new(profile, seed);
    let mut raw_docs: Vec<Vec<Vec<u32>>> = Vec::with_capacity(profile.num_docs);
    while let Some(doc) = stream.next_doc() {
        raw_docs.push(doc);
    }

    // ---- Frequency-ranked dictionary and token remap (paper §V). ----
    let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
    for doc in &raw_docs {
        for sent in doc {
            for &w in sent {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
    }
    let (dictionary, remap) = build_dictionary(profile, &counts);

    let docs: Vec<Document> = raw_docs
        .into_iter()
        .enumerate()
        .map(|(i, sentences)| Document {
            id: i as u64,
            year: doc_year(profile, i),
            sentences: sentences
                .into_iter()
                .map(|s| s.into_iter().map(|w| remap[&w]).collect())
                .collect(),
        })
        .collect();

    Collection {
        name: profile.name.clone(),
        docs,
        dictionary,
    }
}

/// What [`generate_store`] hands back: the sealed store's metadata plus a
/// peak-memory witness.
#[derive(Clone, Debug)]
pub struct StreamedGenerate {
    /// Footer metadata of the store that was written.
    pub meta: StoreMeta,
    /// Peak resident document tokens (current document + duplication
    /// window), in bytes at 4 bytes/token — the generator-side memory
    /// high-water mark, far below the whole corpus for any real profile.
    pub peak_doc_bytes: u64,
}

/// Generate a corpus straight into a block store at `path` without ever
/// materializing the collection: pass 1 streams documents to count words
/// and build the dictionary, pass 2 replays the identical stream and
/// encodes each document into (optionally compressed) blocks. Peak memory
/// is one staged block plus the dictionary plus the duplication window —
/// witnessed by [`StreamedGenerate::peak_doc_bytes`] and the store's
/// block sizes. The resulting file is byte-identical to
/// `save_store_codec(&generate(profile, seed), path, codec)`.
pub fn generate_store(
    profile: &CorpusProfile,
    seed: u64,
    path: &Path,
    codec: StoreCodec,
) -> io::Result<StreamedGenerate> {
    generate_store_budget(profile, seed, path, codec, STORE_BLOCK_BYTES)
}

/// [`generate_store`] with an explicit block budget (tests).
pub(crate) fn generate_store_budget(
    profile: &CorpusProfile,
    seed: u64,
    path: &Path,
    codec: StoreCodec,
    block_budget: usize,
) -> io::Result<StreamedGenerate> {
    // ---- Pass 1: count raw words; documents are dropped as they go. ----
    let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
    let mut peak_doc_tokens = 0u64;
    let mut stream = DocStream::new(profile, seed);
    while let Some(doc) = stream.next_doc() {
        let doc_tokens: u64 = doc.iter().map(|s| s.len() as u64).sum();
        for sent in &doc {
            for &w in sent {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        // The yielded doc is also the newest window entry; don't count it
        // twice.
        peak_doc_tokens = peak_doc_tokens.max(stream.window_tokens().max(doc_tokens));
    }
    let (dictionary, remap) = build_dictionary(profile, &counts);

    // Remapped per-id occurrence counts — the rank codec's permutation
    // input (ids are unique per raw word, so this is a scatter).
    let mut id_counts = vec![0u64; dictionary.len()];
    for (&w, &f) in &counts {
        id_counts[remap[&w] as usize] = f;
    }

    // ---- Pass 2: replay the stream, remap, encode into blocks. ----
    let mut writer = CorpusWriter::create(path, &profile.name)?.block_budget(block_budget);
    if codec != StoreCodec::Plain {
        writer = writer.codec(codec, &id_counts);
    }
    let mut stream = DocStream::new(profile, seed);
    let mut i = 0usize;
    while let Some(sentences) = stream.next_doc() {
        let doc = Document {
            id: i as u64,
            year: doc_year(profile, i),
            sentences: sentences
                .into_iter()
                .map(|s| s.into_iter().map(|w| remap[&w]).collect())
                .collect(),
        };
        writer.push(&doc)?;
        i += 1;
    }
    let meta = writer.finish(&dictionary)?;
    Ok(StreamedGenerate {
        meta,
        peak_doc_bytes: peak_doc_tokens * 4,
    })
}

fn fresh_sentence(profile: &CorpusProfile, unigram: &Zipf, rng: &mut StdRng) -> Vec<u32> {
    let len = lognormal(rng, profile.sentence_len_mean, profile.sentence_len_std)
        .round()
        .clamp(1.0, 400.0) as usize;
    (0..len).map(|_| unigram.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CollectionStats;

    #[test]
    fn generation_is_deterministic() {
        let p = CorpusProfile::tiny("t", 20);
        let a = generate(&p, 7);
        let b = generate(&p, 7);
        assert_eq!(a.docs, b.docs);
        let c = generate(&p, 8);
        assert_ne!(a.docs, c.docs, "different seeds should differ");
    }

    #[test]
    fn ids_are_frequency_ranked() {
        let p = CorpusProfile::tiny("t", 50);
        let coll = generate(&p, 1);
        // Term id 0 must be the most frequent term in the actual corpus.
        let mut counts: FxHashMap<u32, u64> = FxHashMap::default();
        for d in &coll.docs {
            for s in &d.sentences {
                for &t in s {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
        let max_count = counts.values().copied().max().unwrap();
        assert_eq!(counts[&0], max_count);
        // Dictionary cf matches actual counts.
        for (&id, &f) in &counts {
            assert_eq!(coll.dictionary.cf(id), f, "cf mismatch for id {id}");
        }
    }

    #[test]
    fn sentence_length_targets_are_respected() {
        let mut p = CorpusProfile::nyt_like(0.05);
        p.phrase_rate = 0.0; // isolate the base sentence model
        let coll = generate(&p, 3);
        let stats = CollectionStats::compute(&coll);
        assert!(
            (stats.sentence_len_mean - 19.0).abs() < 2.0,
            "mean {}",
            stats.sentence_len_mean
        );
        assert!(
            (stats.sentence_len_std - 14.0).abs() < 4.0,
            "std {}",
            stats.sentence_len_std
        );
    }

    #[test]
    fn phrases_create_repeated_long_sentences() {
        let mut p = CorpusProfile::tiny("t", 200);
        p.phrase_rate = 0.5;
        let coll = generate(&p, 11);
        // Some sentence of length >= 3 must repeat verbatim.
        let mut seen: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        for d in &coll.docs {
            for s in &d.sentences {
                if s.len() >= 3 {
                    *seen.entry(s.clone()).or_insert(0) += 1;
                }
            }
        }
        assert!(
            seen.values().any(|&c| c >= 5),
            "phrase library should cause verbatim repetition"
        );
    }

    #[test]
    fn years_are_chronological_within_range() {
        let p = CorpusProfile::nyt_like(0.01);
        let coll = generate(&p, 9);
        let years: Vec<u16> = coll.docs.iter().map(|d| d.year).collect();
        assert!(years.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*years.first().unwrap(), 1987);
        assert_eq!(*years.last().unwrap(), 2007);
    }

    #[test]
    fn streamed_generate_store_is_byte_identical_to_materialized_save() {
        use crate::store::save_store_codec;
        let p = CorpusProfile::tiny("stream-eq", 120);
        for codec in StoreCodec::ALL {
            let streamed = std::env::temp_dir().join(format!(
                "gen-streamed-{}-{}.ngs",
                std::process::id(),
                codec.name()
            ));
            let materialized = std::env::temp_dir().join(format!(
                "gen-material-{}-{}.ngs",
                std::process::id(),
                codec.name()
            ));
            let out = generate_store(&p, 77, &streamed, codec).unwrap();
            let coll = generate(&p, 77);
            let meta = save_store_codec(&coll, &materialized, codec).unwrap();
            assert_eq!(out.meta, meta, "{}", codec.name());
            assert_eq!(
                std::fs::read(&streamed).unwrap(),
                std::fs::read(&materialized).unwrap(),
                "{}: streamed and materialized stores must be byte-identical",
                codec.name()
            );
            let _ = std::fs::remove_file(&streamed);
            let _ = std::fs::remove_file(&materialized);
        }
    }

    #[test]
    fn streamed_generate_peak_memory_is_bounded_by_window_not_corpus() {
        let p = CorpusProfile::tiny("stream-peak", 600);
        let path = std::env::temp_dir().join(format!("gen-peak-{}.ngs", std::process::id()));
        let budget = 2048usize;
        let out = super::generate_store_budget(&p, 5, &path, StoreCodec::Plain, budget).unwrap();
        let total_bytes = out.meta.num_tokens * 4;
        // The duplication window holds at most DUP_WINDOW documents, so
        // resident document memory must sit far below the whole corpus.
        assert!(
            out.peak_doc_bytes < total_bytes / 3,
            "peak {} should be well under total {}",
            out.peak_doc_bytes,
            total_bytes
        );
        assert!(out.peak_doc_bytes > 0);
        // And the writer side stages at most one block: every block's raw
        // size is bounded by the budget plus one document.
        let reader = crate::store::CorpusReader::open(&path).unwrap();
        let max_doc_bytes = (0..reader.num_blocks())
            .flat_map(|i| reader.read_block(i).unwrap())
            .map(|d| {
                let mut enc = Vec::new();
                mapreduce::write_vu64(&mut enc, d.id);
                mapreduce::write_vu64(&mut enc, u64::from(d.year));
                mapreduce::write_vu64(&mut enc, d.sentences.len() as u64);
                for s in &d.sentences {
                    mapreduce::write_vu64(&mut enc, s.len() as u64);
                    for &t in s {
                        mapreduce::write_vu64(&mut enc, u64::from(t));
                    }
                }
                enc.len()
            })
            .max()
            .unwrap();
        for i in 0..reader.num_blocks() {
            assert!(reader.block_entry(i).raw_bytes as usize <= budget + max_doc_bytes);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplication_copies_whole_sentences() {
        let mut p = CorpusProfile::tiny("t", 300);
        p.duplicate_doc_rate = 0.5;
        p.phrase_rate = 0.0;
        let coll = generate(&p, 13);
        let mut seen: FxHashMap<&[u32], u32> = FxHashMap::default();
        let mut dupes = 0;
        for d in &coll.docs {
            for s in &d.sentences {
                if s.len() >= 4 {
                    let c = seen.entry(s.as_slice()).or_insert(0);
                    *c += 1;
                    if *c == 2 {
                        dupes += 1;
                    }
                }
            }
        }
        assert!(
            dupes > 10,
            "duplication should repeat sentences, got {dupes}"
        );
    }
}
