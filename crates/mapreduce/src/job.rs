//! Job configuration and the execution driver: source → map → shuffle →
//! sort → (combine) → merge → reduce → sink, scheduled over a bounded
//! slot pool.
//!
//! The engine is *streaming end to end*: input splits are pulled from a
//! [`RecordSource`], reduce output is pushed into per-task sinks created
//! by a [`RecordSinkFactory`], and the shuffle middle spills sorted runs.
//! Peak memory is therefore proportional to the sort buffers plus whatever
//! the chosen source/sink pair retains — nothing forces the corpus or the
//! result set to be materialized. The classic [`Job::run`] entry point is
//! a thin wrapper pairing a [`VecSource`] with a [`VecSinkFactory`].

use crate::buffer::{CollectorConfig, CombinerFactory, MapOutputCollector};
use crate::checkpoint::{CheckpointSpec, JobCheckpoint};
use crate::cluster::Cluster;
use crate::comparator::{RawComparator, TypedComparator};
use crate::counters::{Counter, CounterSnapshot, Counters};
use crate::error::{MrError, Result};
use crate::fault::FaultPlan;
use crate::io::{ByteReader, Writable};
use crate::merge::MergeStream;
use crate::partition::{HashPartition, Partitioner};
use crate::run::{Run, RunCodec, TempDir};
use crate::sink::{RecordSinkFactory, VecSinkFactory};
use crate::source::{RecordSource, RecordStream, VecSource};
use crate::task::{BoxedCombiner, MapContext, Mapper, ReduceContext, Reducer};
use crate::trace::{JobSpan, JobTrace, TaskSpan, TraceSink};
use crate::values::ValueIter;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default map-side sort buffer (Hadoop's `io.sort.mb` analogue).
pub const DEFAULT_SORT_BUFFER_BYTES: usize = 64 * 1024 * 1024;

/// One worker's claimable work item (`None` once taken).
type WorkSlot<T> = Mutex<Option<T>>;

/// Tunable knobs of a single job.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Job name, shown in the cluster log.
    pub name: String,
    /// Number of map tasks; `0` chooses automatically from the input size
    /// and slot count.
    pub num_map_tasks: usize,
    /// Number of reduce tasks (`R` in the paper); `0` uses the slot count.
    pub num_reduce_tasks: usize,
    /// Parallel worker threads ("map/reduce slots", §VII-A); `0` inherits
    /// the cluster's slot count.
    pub slots: usize,
    /// Map-side sort buffer budget in bytes; exceeding it triggers a spill.
    pub sort_buffer_bytes: usize,
    /// Write spill runs to temporary files instead of keeping them in
    /// memory (models Hadoop's disk spills; required for inputs whose map
    /// output exceeds RAM).
    pub spill_to_disk: bool,
    /// Directory for spill files; `None` uses the system temp directory.
    pub tmp_dir: Option<std::path::PathBuf>,
    /// Block codec for shuffle spill runs ([`RunCodec::Plain`] is
    /// byte-identical to the historical format; [`RunCodec::FrontCoded`]
    /// delta-codes sorted keys).
    pub run_codec: RunCodec,
    /// Cache an order-consistent `sort_prefix` digest per record and
    /// resolve map-side sort comparisons on it before falling back to the
    /// raw comparator. On by default; disable only to measure the
    /// unaccelerated baseline.
    pub prefix_sort: bool,
    /// Overlap I/O with compute across the dataflow: map tasks hand full
    /// sort buffers to a dedicated spill-writer thread (double-buffering
    /// the arena), reduce-side merges open runs through read-ahead
    /// decoders, and prefetch-capable sources (the corpus block store)
    /// fetch their next block in the background. Off by default — the
    /// synchronous path is the ablation baseline. The residual waits are
    /// witnessed by [`Counter::MapInputStallNanos`],
    /// [`Counter::SpillStallNanos`] and [`Counter::ReduceDecodeStallNanos`]
    /// (all zero when synchronous).
    ///
    /// The flag is *adaptive*: helper threads are only spawned when the
    /// host can actually run them in parallel (see
    /// [`JobConfig::pipeline_min_cpus`]); on a single-CPU host they could
    /// only time-slice against the very work they are meant to overlap,
    /// so the engine degrades to the synchronous path there.
    pub pipelined: bool,
    /// Minimum host parallelism ([`std::thread::available_parallelism`])
    /// required before [`JobConfig::pipelined`] actually spawns helper
    /// threads. Default 2. Set to 1 to force the threaded machinery
    /// regardless of the host (tests, ablation runs).
    pub pipeline_min_cpus: usize,
    /// Maximum attempts per task (Hadoop's `mapred.map.max.attempts`).
    /// Each map task and reduce partition runs in a panic-isolated
    /// attempt; a failed attempt discards its partial output and the task
    /// is retried until this budget is exhausted, at which point the job
    /// fails with [`MrError::TaskFailed`]. Values below 1 behave as 1.
    pub max_task_attempts: u32,
    /// Deterministic fault-injection schedule (tests, CI smoke legs);
    /// `None` — the default — injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Record a [`TaskSpan`] per task attempt and job-level spans for the
    /// setup / map / reduce / seal stretches, published as
    /// [`JobStats::trace`] and into the cluster job log. Off by default;
    /// the disabled path costs a single branch per attempt (plus one per
    /// merged record on the reduce side), so production runs pay nothing.
    pub trace: bool,
    /// Durable checkpointing: when set, every completed map task publishes
    /// its spill runs plus a CRC-guarded `task-NNN.done` record under the
    /// spec's manifest directory, and reduce partitions whose sink
    /// supports it checkpoint their sealed output. With
    /// [`CheckpointSpec::resume`] enabled, a restarted job skips the
    /// recorded tasks ([`Counter::TaskSkippedCheckpointed`]) and refuses a
    /// manifest whose fingerprint does not match
    /// ([`MrError::CheckpointMismatch`]). `None` — the default —
    /// checkpoints nothing.
    pub checkpoint: Option<Arc<CheckpointSpec>>,
    /// Speculative execution: once the map claim queue drains and a
    /// worker goes idle, it launches a backup attempt for any in-flight
    /// task whose elapsed wall exceeds this multiple of the completed-task
    /// median (Hadoop's straggler mitigation). The first finisher — primary
    /// or backup — publishes its output through an atomic commit; the
    /// loser is discarded like a failed attempt. `0.0` — the default —
    /// disables speculation; values below 1.0 behave as 1.0.
    pub speculative_slack: f64,
    /// Minimum host parallelism required before speculation actually
    /// launches backups (mirrors [`JobConfig::pipeline_min_cpus`]): on a
    /// single-CPU host a backup could only time-slice against the very
    /// straggler it races. Default 2; set to 1 to force speculation
    /// regardless of the host (tests).
    pub speculative_min_cpus: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            name: "job".to_string(),
            num_map_tasks: 0,
            num_reduce_tasks: 0,
            slots: 0,
            sort_buffer_bytes: DEFAULT_SORT_BUFFER_BYTES,
            spill_to_disk: false,
            tmp_dir: None,
            run_codec: RunCodec::default(),
            prefix_sort: true,
            pipelined: false,
            pipeline_min_cpus: 2,
            max_task_attempts: 3,
            fault_plan: None,
            trace: false,
            checkpoint: None,
            speculative_slack: 0.0,
            speculative_min_cpus: 2,
        }
    }
}

impl JobConfig {
    /// Named config with defaults.
    pub fn named(name: impl Into<String>) -> Self {
        JobConfig {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Whether this job will actually run pipelined: the flag is set AND
    /// the host has at least [`JobConfig::pipeline_min_cpus`] CPUs to run
    /// the helper threads on. Sources that prefetch (e.g. the corpus
    /// block store) should consult this, not the raw flag.
    pub fn effective_pipelined(&self) -> bool {
        self.pipelined
            && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                >= self.pipeline_min_cpus.max(1)
    }

    /// Whether this job will actually speculate: a positive
    /// [`JobConfig::speculative_slack`] AND at least
    /// [`JobConfig::speculative_min_cpus`] host CPUs for backups to run on.
    pub fn effective_speculation(&self) -> bool {
        self.speculative_slack > 0.0
            && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                >= self.speculative_min_cpus.max(1)
    }
}

/// Telemetry shared by every finished job, independent of the sink type.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// All counters, aggregated over the job's tasks.
    pub counters: CounterSnapshot,
    /// End-to-end wallclock time of the job.
    pub elapsed: Duration,
    /// Wallclock time of the map phase (including shuffle writes).
    pub map_time: Duration,
    /// Wallclock time of the reduce phase (merge + reduce).
    pub reduce_time: Duration,
    /// Per-map-task execution times (for slot-scaling simulation).
    pub map_task_times: Vec<Duration>,
    /// Per-reduce-task execution times.
    pub reduce_task_times: Vec<Duration>,
    /// Span trace of the run; `Some` iff [`JobConfig::trace`] was on.
    pub trace: Option<JobTrace>,
}

impl JobStats {
    /// Predicted wallclock of this job on a cluster with `slots` parallel
    /// slots per phase: list-scheduling makespan of the recorded map task
    /// times followed by the reduce task times. Lets a single-core host
    /// reproduce the slot-scaling experiment (paper Fig. 7) from one
    /// measured run.
    pub fn simulated_wall(&self, slots: usize) -> Duration {
        simulated_makespan(&self.map_task_times, slots)
            + simulated_makespan(&self.reduce_task_times, slots)
    }
}

/// Result of one streamed job: per-reduce-task sink artifacts (in
/// partition order) plus run telemetry.
pub struct JobRun<A> {
    /// Sealed sink artifacts, one per reduce task, in partition order.
    pub artifacts: Vec<A>,
    /// Timing and counter telemetry.
    pub stats: JobStats,
}

/// Timing and counter results of one finished materialized job
/// (the [`Job::run`] compatibility path).
pub struct JobResult<K, V> {
    /// Reduce outputs, one vector per reduce task, in partition order.
    pub outputs: Vec<Vec<(K, V)>>,
    /// All counters, aggregated over the job's tasks.
    pub counters: CounterSnapshot,
    /// End-to-end wallclock time of the job.
    pub elapsed: Duration,
    /// Wallclock time of the map phase (including shuffle writes).
    pub map_time: Duration,
    /// Wallclock time of the reduce phase (merge + reduce).
    pub reduce_time: Duration,
    /// Per-map-task execution times (for slot-scaling simulation).
    pub map_task_times: Vec<Duration>,
    /// Per-reduce-task execution times.
    pub reduce_task_times: Vec<Duration>,
}

impl<K, V> From<JobRun<Vec<(K, V)>>> for JobResult<K, V> {
    fn from(run: JobRun<Vec<(K, V)>>) -> Self {
        JobResult {
            outputs: run.artifacts,
            counters: run.stats.counters,
            elapsed: run.stats.elapsed,
            map_time: run.stats.map_time,
            reduce_time: run.stats.reduce_time,
            map_task_times: run.stats.map_task_times,
            reduce_task_times: run.stats.reduce_task_times,
        }
    }
}

impl<K, V> JobResult<K, V> {
    /// Flatten the per-reducer outputs into one vector (for job chaining).
    pub fn into_records(self) -> Vec<(K, V)> {
        self.outputs.into_iter().flatten().collect()
    }

    /// Total number of output records.
    pub fn num_records(&self) -> usize {
        self.outputs.iter().map(Vec::len).sum()
    }

    /// Predicted wallclock on `slots` parallel slots per phase; see
    /// [`JobStats::simulated_wall`].
    pub fn simulated_wall(&self, slots: usize) -> Duration {
        simulated_makespan(&self.map_task_times, slots)
            + simulated_makespan(&self.reduce_task_times, slots)
    }
}

/// Makespan of greedy list scheduling of `tasks` onto `slots` machines
/// (tasks assigned in order to the least-loaded slot — lowest index on
/// ties — as a task-tracker pulling work from a queue behaves).
///
/// Runs in O(n log s) via a min-heap over `(load, slot)` pairs instead of
/// a linear scan per task.
pub fn simulated_makespan(tasks: &[Duration], slots: usize) -> Duration {
    let slots = slots.max(1);
    if slots == 1 {
        return tasks.iter().sum();
    }
    // `Reverse((load, slot))` pops the least-loaded slot, lowest index
    // first on equal loads — the same choice the former linear
    // `min_by_key` scan made.
    let mut heap: BinaryHeap<Reverse<(Duration, usize)>> = (0..slots.min(tasks.len().max(1)))
        .map(|s| Reverse((Duration::ZERO, s)))
        .collect();
    let mut makespan = Duration::ZERO;
    for &t in tasks {
        let Reverse((load, slot)) = heap.pop().expect("heap is non-empty");
        let load = load + t;
        makespan = makespan.max(load);
        heap.push(Reverse((load, slot)));
    }
    makespan
}

/// A configured MapReduce job, ready to run on a [`Cluster`].
///
/// Built from mapper and reducer *factories* (one instance per task), an
/// optional combiner factory, a partitioner, and a raw sort comparator.
pub struct Job<M, R>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, ValueIn = M::OutValue>,
{
    mapper_f: Arc<dyn Fn() -> M + Send + Sync>,
    reducer_f: Arc<dyn Fn() -> R + Send + Sync>,
    combiner_f: Option<CombinerFactory<M::OutKey, M::OutValue>>,
    partitioner: Arc<dyn Partitioner<M::OutKey>>,
    comparator: Arc<dyn RawComparator>,
    config: JobConfig,
}

impl<M, R> Job<M, R>
where
    M: Mapper + 'static,
    R: Reducer<Key = M::OutKey, ValueIn = M::OutValue> + 'static,
    M::OutKey: Ord + Hash + 'static,
    M::OutValue: 'static,
    R::KeyOut: Send,
    R::ValueOut: Send,
{
    /// Create a job with the default hash partitioner and a deserializing
    /// comparator over `OutKey: Ord` (Hadoop's defaults).
    pub fn new(
        config: JobConfig,
        mapper_f: impl Fn() -> M + Send + Sync + 'static,
        reducer_f: impl Fn() -> R + Send + Sync + 'static,
    ) -> Self {
        Job {
            mapper_f: Arc::new(mapper_f),
            reducer_f: Arc::new(reducer_f),
            combiner_f: None,
            partitioner: Arc::new(HashPartition),
            comparator: Arc::new(TypedComparator::<M::OutKey>::new()),
            config,
        }
    }

    /// Install a combiner factory (runs at every map-side spill).
    pub fn combiner(
        mut self,
        f: impl Fn() -> BoxedCombiner<M::OutKey, M::OutValue> + Send + Sync + 'static,
    ) -> Self {
        self.combiner_f = Some(Arc::new(f));
        self
    }

    /// Replace the partitioner (e.g. SUFFIX-σ's first-term partitioner).
    pub fn partitioner(mut self, p: impl Partitioner<M::OutKey> + 'static) -> Self {
        self.partitioner = Arc::new(p);
        self
    }

    /// Replace the sort comparator (e.g. reverse lexicographic order).
    pub fn sort_comparator(mut self, c: impl RawComparator + 'static) -> Self {
        self.comparator = Arc::new(c);
        self
    }

    /// Execute the job over a materialized input vector, collecting reduce
    /// output into vectors — a [`VecSource`] / [`VecSinkFactory`] pairing
    /// of [`Job::run_streamed`] kept for callers that want records in
    /// memory.
    pub fn run(
        &self,
        cluster: &Cluster,
        input: Vec<(M::InKey, M::InValue)>,
    ) -> Result<JobResult<R::KeyOut, R::ValueOut>> {
        let sinks = VecSinkFactory::default();
        Ok(self
            .run_streamed(cluster, VecSource::new(input), &sinks)?
            .into())
    }

    /// Execute the job pulling splits from `source` and pushing reduce
    /// output into per-task sinks from `sinks`, blocking until done.
    ///
    /// This is the streaming entry point: with a run-backed source and a
    /// run or writer sink, no `Vec<(K, V)>` of the input or output ever
    /// exists — memory stays bounded by the sort buffers.
    pub fn run_streamed<S, F>(
        &self,
        cluster: &Cluster,
        source: S,
        sinks: &F,
    ) -> Result<JobRun<F::Artifact>>
    where
        S: RecordSource<M::InKey, M::InValue>,
        F: RecordSinkFactory<R::KeyOut, R::ValueOut>,
    {
        let started = Instant::now();
        let slots = if self.config.slots == 0 {
            cluster.slots()
        } else {
            self.config.slots
        };
        if slots == 0 {
            return Err(MrError::Config("slot count must be positive".into()));
        }
        let num_reduce = if self.config.num_reduce_tasks == 0 {
            slots
        } else {
            self.config.num_reduce_tasks
        };
        let num_map = effective_map_tasks(self.config.num_map_tasks, source.len_hint(), slots);
        let counters = Arc::new(Counters::new());
        // One branch when off: every tracing hook below is behind this
        // `Option`.
        let trace_sink = self.config.trace.then(|| TraceSink::new(slots));

        let temp = if self.config.spill_to_disk {
            Some(Arc::new(TempDir::create(self.config.tmp_dir.as_deref())?))
        } else {
            None
        };

        // ---- Split phase: the source decides record placement. ----
        let splits = source.into_splits(num_map)?;
        let num_map = splits.len().max(1);

        // One manifest directory per job, claimed from the spec in launch
        // order; a spec degraded mid-chain (checkpoint disk failure)
        // checkpoints nothing further.
        let ckpt = match &self.config.checkpoint {
            Some(spec) if !spec.is_disabled() => Some(JobCheckpoint::prepare(
                spec,
                self.config.fault_plan.clone(),
                &self.config.name,
                num_map,
                num_reduce,
                self.config.run_codec,
            )?),
            _ => None,
        };

        // ---- Map phase. ----
        let map_started = Instant::now();
        let partition_runs: Vec<Mutex<Vec<Run>>> =
            (0..num_reduce).map(|_| Mutex::new(Vec::new())).collect();
        let map_task_times: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(num_map));
        {
            // LPT claim order: workers take splits in descending predicted
            // cost so a heavy straggler is started first, not discovered
            // last. The sort is stable, so cost-free sources (in-memory
            // splits all predict 0) keep their historical arrival order.
            let costs: Vec<u64> = splits.iter().map(|s| s.predicted_cost()).collect();
            let n_splits = costs.len();
            let claim_order = lpt_claim_order(costs.iter().copied());
            let splits: Vec<WorkSlot<S::Split>> =
                splits.into_iter().map(|s| Mutex::new(Some(s))).collect();
            // Per-task commit state: `finished` is the atomic publish
            // gate primary and speculative attempts race through;
            // `started_at` / `backups` feed the straggler monitor.
            let finished: Vec<AtomicBool> = (0..n_splits).map(|_| AtomicBool::new(false)).collect();
            let started_at: Vec<Mutex<Option<Instant>>> =
                (0..n_splits).map(|_| Mutex::new(None)).collect();
            let backups: Vec<WorkSlot<S::Split>> =
                (0..n_splits).map(|_| Mutex::new(None)).collect();
            let completed = AtomicUsize::new(0);
            let speculate = self.config.effective_speculation();

            // Resume: tasks the manifest records complete are taken out of
            // the claim queue, their persisted runs fed straight into the
            // merge and their counters restored. A cost mismatch means the
            // source sliced the input differently — refuse rather than mix.
            if let Some(ck) = &ckpt {
                for (&i, done) in ck.completed_map() {
                    if i >= n_splits {
                        continue;
                    }
                    if done.cost != costs[i] {
                        return Err(MrError::CheckpointMismatch {
                            expected: format!("map task {i} with split cost {}", costs[i]),
                            found: format!("recorded split cost {}", done.cost),
                        });
                    }
                    let _ = splits[i].lock().take();
                    for (p, run) in done.restore_runs(ck.dir()) {
                        if p < num_reduce {
                            partition_runs[p].lock().push(run);
                        }
                    }
                    counters.absorb(&done.counters);
                    counters.inc(Counter::TaskSkippedCheckpointed);
                    map_task_times
                        .lock()
                        .push(Duration::from_nanos(done.wall_nanos));
                    finished[i].store(true, Ordering::SeqCst);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            }

            let next = AtomicUsize::new(0);
            let first_error: Mutex<Option<MrError>> = Mutex::new(None);
            let workers = slots.min(num_map).max(1);
            // The single commit path for a completed map task, shared by
            // primary and speculative attempts: absorb the winning
            // attempt's counters, durably publish the checkpoint while the
            // runs are still borrowable, then hand the runs to the merge.
            let publish = |i: usize, runs: Vec<Vec<Run>>, snap: CounterSnapshot, wall: Duration| {
                counters.absorb(&snap);
                if let Some(ck) = &ckpt {
                    ck.publish_map_task(i, costs[i], wall, &snap, &runs, &counters);
                }
                map_task_times.lock().push(wall);
                for (p, rs) in runs.into_iter().enumerate() {
                    if !rs.is_empty() {
                        partition_runs[p].lock().extend(rs);
                    }
                }
                completed.fetch_add(1, Ordering::Relaxed);
            };
            std::thread::scope(|scope| {
                for w in 0..workers {
                    // Move closures capture `w` by value; everything else
                    // is re-aliased as a reference first.
                    let (splits, claim_order, next) = (&splits, &claim_order, &next);
                    let (first_error, map_task_times) = (&first_error, &map_task_times);
                    let counters = &counters;
                    let (finished, started_at, backups) = (&finished, &started_at, &backups);
                    let (completed, publish) = (&completed, &publish);
                    let trace_sink = trace_sink.as_ref();
                    let temp = temp.clone();
                    scope.spawn(move || {
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= claim_order.len() {
                                break;
                            }
                            let i = claim_order[c];
                            let Some(mut split) = splits[i].lock().take() else {
                                continue;
                            };
                            if speculate {
                                // Stash a rewindable copy for a potential
                                // backup attempt (sources that cannot
                                // re-stream clone to `None`: no backup).
                                *backups[i].lock() = split.try_clone();
                            }
                            let task_started = Instant::now();
                            *started_at[i].lock() = Some(task_started);
                            let queue_wait = task_started.duration_since(map_started);
                            let attempted = self.run_task_attempts(
                                "map",
                                i,
                                counters,
                                trace_sink,
                                w,
                                queue_wait,
                                |attempt, attempt_ctrs| {
                                    if let Some(plan) = &self.config.fault_plan {
                                        plan.maybe_die_map(i, attempt);
                                        plan.maybe_panic_map(i, attempt);
                                    }
                                    self.run_map_task(
                                        &mut split,
                                        num_reduce,
                                        attempt_ctrs,
                                        temp.clone(),
                                    )
                                },
                            );
                            match attempted {
                                Ok((runs, snap)) => {
                                    let _ = backups[i].lock().take();
                                    if !finished[i].swap(true, Ordering::SeqCst) {
                                        publish(i, runs, snap, task_started.elapsed());
                                    }
                                }
                                Err(e) => {
                                    // A lost race against our own backup is
                                    // not a failure; anything else is.
                                    if !finished[i].load(Ordering::SeqCst) {
                                        let mut slot = first_error.lock();
                                        if slot.is_none() {
                                            *slot = Some(e);
                                        }
                                    }
                                }
                            }
                        }
                        if !speculate {
                            return;
                        }
                        // Claim queue drained: this worker is idle. Race
                        // backups against in-flight stragglers whose wall
                        // exceeds `speculative_slack` × the completed-task
                        // median.
                        loop {
                            if first_error.lock().is_some()
                                || completed.load(Ordering::Relaxed) >= n_splits
                            {
                                return;
                            }
                            let threshold = {
                                let times = map_task_times.lock();
                                if times.len() < 3 {
                                    None
                                } else {
                                    let mut walls = times.clone();
                                    walls.sort();
                                    Some(
                                        walls[walls.len() / 2]
                                            .mul_f64(self.config.speculative_slack.max(1.0)),
                                    )
                                }
                            };
                            let mut launched = false;
                            for i in 0..n_splits {
                                let Some(threshold) = threshold else { break };
                                if finished[i].load(Ordering::SeqCst) {
                                    continue;
                                }
                                let elapsed = match *started_at[i].lock() {
                                    Some(t) => t.elapsed(),
                                    None => continue,
                                };
                                if elapsed <= threshold {
                                    continue;
                                }
                                let Some(mut split) = backups[i].lock().take() else {
                                    continue;
                                };
                                launched = true;
                                counters.inc(Counter::SpeculativeAttempts);
                                let attempt_counters = Arc::new(Counters::new());
                                let backup_started = Instant::now();
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        self.run_map_task(
                                            &mut split,
                                            num_reduce,
                                            &attempt_counters,
                                            temp.clone(),
                                        )
                                    }));
                                // First finisher through the gate commits;
                                // the loser's output is dropped wholesale.
                                let won = matches!(&outcome, Ok(Ok(_)))
                                    && !finished[i].swap(true, Ordering::SeqCst);
                                if let Some(sink) = trace_sink {
                                    sink.record(
                                        w,
                                        TaskSpan {
                                            phase: "map",
                                            task: i,
                                            attempt: 1,
                                            queue_wait: backup_started.duration_since(map_started),
                                            wall: backup_started.elapsed(),
                                            ok: won,
                                            speculative: true,
                                            counters: attempt_counters.snapshot(),
                                        },
                                    );
                                }
                                if won {
                                    if let Ok(Ok(runs)) = outcome {
                                        counters.inc(Counter::SpeculativeWins);
                                        publish(
                                            i,
                                            runs,
                                            attempt_counters.snapshot(),
                                            backup_started.elapsed(),
                                        );
                                    }
                                }
                            }
                            if !launched {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    });
                }
            });
            if let Some(e) = first_error.into_inner() {
                return Err(e);
            }
        }
        let map_time = map_started.elapsed();

        // ---- Reduce phase. ----
        let reduce_started = Instant::now();
        let artifacts: Vec<WorkSlot<F::Artifact>> =
            (0..num_reduce).map(|_| Mutex::new(None)).collect();
        let reduce_task_times: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(num_reduce));
        {
            let next = AtomicUsize::new(0);
            let first_error: Mutex<Option<MrError>> = Mutex::new(None);
            let workers = slots.min(num_reduce).max(1);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (next, first_error) = (&next, &first_error);
                    let (counters, partition_runs) = (&counters, &partition_runs);
                    let (artifacts, reduce_task_times) = (&artifacts, &reduce_task_times);
                    let ckpt = ckpt.as_ref();
                    let trace_sink = trace_sink.as_ref();
                    scope.spawn(move || loop {
                        let p = next.fetch_add(1, Ordering::Relaxed);
                        if p >= num_reduce {
                            return;
                        }
                        // Resume: a partition whose sealed artifact the
                        // sink can restore from the manifest is not re-run.
                        // A restore failure (corrupt file) just re-runs.
                        if let Some(ck) = ckpt {
                            if let Some(done) = ck.reduce_done(p) {
                                match sinks.restore(p, ck.dir()) {
                                    Ok(Some(artifact)) => {
                                        counters.absorb(&done.counters);
                                        counters.inc(Counter::TaskSkippedCheckpointed);
                                        reduce_task_times
                                            .lock()
                                            .push(Duration::from_nanos(done.wall_nanos));
                                        *artifacts[p].lock() = Some(artifact);
                                        continue;
                                    }
                                    Ok(None) => {}
                                    Err(e) => crate::log_warn!(
                                        "checkpoint",
                                        "reduce {p} restore failed ({e}); re-running"
                                    ),
                                }
                            }
                        }
                        let runs = std::mem::take(&mut *partition_runs[p].lock());
                        let task_started = Instant::now();
                        let queue_wait = task_started.duration_since(reduce_started);
                        let attempted = self.run_task_attempts(
                            "reduce",
                            p,
                            counters,
                            trace_sink,
                            w,
                            queue_wait,
                            |attempt, attempt_ctrs| {
                                if let Some(plan) = &self.config.fault_plan {
                                    plan.maybe_die_reduce(p, attempt);
                                    plan.maybe_panic_reduce(p, attempt);
                                }
                                self.run_reduce_task(p, &runs, attempt_ctrs, sinks)
                            },
                        );
                        match attempted {
                            Ok((artifact, snap)) => {
                                counters.absorb(&snap);
                                let wall = task_started.elapsed();
                                reduce_task_times.lock().push(wall);
                                if let Some(ck) = ckpt {
                                    if ck.active() {
                                        match sinks.checkpoint(p, &artifact, ck.dir()) {
                                            Ok(Some(bytes)) => ck.publish_reduce_task(
                                                p, wall, &snap, bytes, counters,
                                            ),
                                            Ok(None) => {}
                                            Err(e) => ck.degrade("reduce sink checkpoint", &e),
                                        }
                                    }
                                }
                                *artifacts[p].lock() = Some(artifact)
                            }
                            Err(e) => {
                                let mut slot = first_error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                            }
                        }
                    });
                }
            });
            if let Some(e) = first_error.into_inner() {
                return Err(e);
            }
        }
        let reduce_time = reduce_started.elapsed();

        let artifacts: Vec<F::Artifact> = artifacts
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .ok_or(MrError::Config("reduce task produced no artifact".into()))
            })
            .collect::<Result<_>>()?;
        let elapsed = started.elapsed();
        // The four driver spans partition `elapsed` end to end: setup is
        // everything before the map scope (split planning), seal is
        // everything after the reduce scope (artifact collection), and
        // the only unspanned stretch is the handful of allocations
        // between the map and reduce scopes.
        let trace = trace_sink.map(|sink| {
            let setup_wall = map_started.duration_since(started);
            let reduce_start = reduce_started.duration_since(started);
            let seal_start = reduce_start + reduce_time;
            JobTrace {
                name: self.config.name.clone(),
                elapsed,
                job_spans: vec![
                    JobSpan {
                        name: "setup",
                        start: Duration::ZERO,
                        wall: setup_wall,
                    },
                    JobSpan {
                        name: "map",
                        start: setup_wall,
                        wall: map_time,
                    },
                    JobSpan {
                        name: "reduce",
                        start: reduce_start,
                        wall: reduce_time,
                    },
                    JobSpan {
                        name: "seal",
                        start: seal_start,
                        wall: elapsed.saturating_sub(seal_start),
                    },
                ],
                task_spans: sink.into_spans(),
            }
        });
        let stats = JobStats {
            counters: counters.snapshot(),
            elapsed,
            map_time,
            reduce_time,
            map_task_times: map_task_times.into_inner(),
            reduce_task_times: reduce_task_times.into_inner(),
            trace,
        };
        cluster.record_job(
            &self.config.name,
            stats.elapsed,
            &stats.counters,
            &stats.map_task_times,
            &stats.reduce_task_times,
            stats.trace.clone(),
        );
        Ok(JobRun { artifacts, stats })
    }

    /// Run one task as a sequence of isolated attempts: each attempt runs
    /// under `catch_unwind` with a private counter bank, so a panic or
    /// error discards the attempt's counted work (its partial sink/run
    /// output is discarded by the attempt body itself — streams restart
    /// from the beginning, sinks are recreated per attempt) and the task
    /// is retried with linear backoff until
    /// [`JobConfig::max_task_attempts`] is exhausted. The successful
    /// attempt's private counter snapshot is returned alongside its value
    /// — the *caller* absorbs it into the shared bank iff the attempt wins
    /// the publish race (speculation may have finished the task first), so
    /// retried and losing work is never double-counted; the bookkeeping
    /// trio ([`Counter::TaskAttempts`], [`Counter::TaskRetries`],
    /// [`Counter::TaskPanics`]) is recorded unconditionally.
    #[allow(clippy::too_many_arguments)]
    fn run_task_attempts<T>(
        &self,
        phase: &'static str,
        task: usize,
        counters: &Arc<Counters>,
        trace: Option<&TraceSink>,
        worker: usize,
        queue_wait: Duration,
        mut attempt_fn: impl FnMut(u32, &Arc<Counters>) -> Result<T>,
    ) -> Result<(T, CounterSnapshot)> {
        let max = self.config.max_task_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            counters.inc(Counter::TaskAttempts);
            let attempt_counters = Arc::new(Counters::new());
            let attempt_started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                attempt_fn(attempt, &attempt_counters)
            }));
            let snap = attempt_counters.snapshot();
            if let Some(sink) = trace {
                // Every attempt gets a span — failed ones too, carrying
                // the private counter bank the retry machinery is about
                // to throw away.
                sink.record(
                    worker,
                    TaskSpan {
                        phase,
                        task,
                        attempt: attempt + 1,
                        queue_wait,
                        wall: attempt_started.elapsed(),
                        ok: matches!(outcome, Ok(Ok(_))),
                        speculative: false,
                        counters: snap.clone(),
                    },
                );
            }
            let err = match outcome {
                Ok(Ok(value)) => return Ok((value, snap)),
                Ok(Err(e)) => e,
                Err(payload) => {
                    counters.inc(Counter::TaskPanics);
                    MrError::TaskPanic(panic_message(payload))
                }
            };
            attempt += 1;
            if attempt >= max {
                crate::log_error!(
                    "job",
                    "{phase} task {task} failed after {attempt} attempt(s): {err}"
                );
                return Err(MrError::TaskFailed {
                    phase,
                    task,
                    attempts: attempt,
                    cause: Box::new(err),
                });
            }
            counters.inc(Counter::TaskRetries);
            let backoff = Duration::from_millis(10 * u64::from(attempt));
            crate::log_warn!(
                "job",
                "{phase} task {task} attempt {attempt} failed: {err}; retrying in {} ms",
                backoff.as_millis()
            );
            std::thread::sleep(backoff);
        }
    }

    fn run_map_task<St>(
        &self,
        split: &mut St,
        num_reduce: usize,
        counters: &Arc<Counters>,
        temp: Option<Arc<TempDir>>,
    ) -> Result<Vec<Vec<Run>>>
    where
        St: RecordStream<M::InKey, M::InValue>,
    {
        let mut collector = MapOutputCollector::new(
            num_reduce,
            CollectorConfig {
                sort_buffer_bytes: self.config.sort_buffer_bytes,
                spill_to_disk: self.config.spill_to_disk,
                run_codec: self.config.run_codec,
                prefix_sort: self.config.prefix_sort,
                pipelined: self.config.effective_pipelined(),
                fault: self.config.fault_plan.clone(),
            },
            temp,
            Arc::clone(&self.comparator),
            self.combiner_f.clone(),
            Arc::clone(counters),
        );
        let mut mapper = (self.mapper_f)();
        // Counted locally and added in bulk: a shared atomic RMW per input
        // record would contend across all map workers on the hot loop.
        let mut records_in = 0u64;
        let mapped = {
            let mut ctx = MapContext {
                collector: &mut collector,
                partitioner: self.partitioner.as_ref(),
                num_partitions: num_reduce,
                counters,
                error: None,
            };
            let streamed = split.for_each(&mut |k, v| {
                records_in += 1;
                mapper.map(k, v, &mut ctx);
                // Abort the stream at the first collector error instead of
                // mapping the rest of the split into a void.
                ctx.take_error()
            });
            streamed.and_then(|()| {
                mapper.cleanup(&mut ctx);
                ctx.take_error()
            })
        };
        counters.add(Counter::MapInputRecords, records_in);
        let input = split.input_stats();
        counters.add(Counter::MapInputBytes, input.bytes_read);
        counters.add(Counter::InputRawBytes, input.raw_bytes);
        counters.add(Counter::InputBlocksRead, input.blocks_read);
        counters.max(Counter::InputPeakBlockBytes, input.peak_block_bytes);
        counters.add(Counter::MapInputStallNanos, input.stall_nanos);
        mapped?;
        collector.finish()
    }

    fn run_reduce_task<F>(
        &self,
        partition: usize,
        runs: &[Run],
        counters: &Arc<Counters>,
        sinks: &F,
    ) -> Result<F::Artifact>
    where
        F: RecordSinkFactory<R::KeyOut, R::ValueOut>,
    {
        let mut stream = MergeStream::with_options(
            runs,
            Arc::clone(&self.comparator),
            self.config.prefix_sort,
            self.config.effective_pipelined(),
        )?
        .timed(self.config.trace);
        let mut reducer = (self.reducer_f)();
        let mut sink = sinks.make(partition)?;
        let mut key_buf: Vec<u8> = Vec::new();
        let mut val_buf: Vec<u8> = Vec::new();
        loop {
            if !stream.next_record(&mut key_buf, &mut val_buf)? {
                break;
            }
            counters.inc(Counter::ReduceInputGroups);
            let key = M::OutKey::read_from(&mut ByteReader::new(&key_buf))?;
            let first_val = std::mem::take(&mut val_buf);
            let consumed = {
                let mut values = ValueIter::<M::OutValue>::stream(&mut stream, &key_buf, first_val);
                let mut ctx = ReduceContext::new(&mut sink, counters, Counter::ReduceOutputRecords);
                reducer.reduce(key, &mut values, &mut ctx);
                values.finish()?
            };
            counters.add(Counter::ReduceInputRecords, consumed);
        }
        counters.add(Counter::ReduceDecodeStallNanos, stream.stall_nanos());
        counters.add(Counter::ReduceMergeNanos, stream.merge_nanos());
        let mut ctx = ReduceContext::new(&mut sink, counters, Counter::ReduceOutputRecords);
        reducer.cleanup(&mut ctx);
        sinks.seal(partition, sink)
    }
}

/// Best-effort human-readable message out of a caught panic payload
/// (`panic!` with a literal or a formatted string covers practically all
/// real payloads; anything else is opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Claim order for the map phase: split indices sorted by descending
/// predicted cost (longest processing time first). The stable sort keeps
/// equal-cost splits — in particular the all-zero costs of in-memory
/// sources — in arrival order.
fn lpt_claim_order(costs: impl Iterator<Item = u64>) -> Vec<usize> {
    let costs: Vec<u64> = costs.collect();
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    order
}

fn effective_map_tasks(configured: usize, input_len: usize, slots: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    // Default: enough tasks for decent balance, without administrative
    // overhead dominating tiny inputs.
    (slots * 4).clamp(1, input_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_task_count_heuristic() {
        assert_eq!(effective_map_tasks(7, 100, 4), 7);
        assert_eq!(effective_map_tasks(0, 100, 4), 16);
        assert_eq!(effective_map_tasks(0, 3, 4), 3);
        assert_eq!(effective_map_tasks(0, 0, 4), 1);
    }

    #[test]
    fn makespan_list_scheduling() {
        let ms = Duration::from_millis;
        let tasks = [ms(4), ms(3), ms(2), ms(1)];
        assert_eq!(simulated_makespan(&tasks, 1), ms(10));
        // Greedy in arrival order on 2 slots: {4,1} and {3,2} → 5.
        assert_eq!(simulated_makespan(&tasks, 2), ms(5));
        assert_eq!(simulated_makespan(&tasks, 4), ms(4));
        assert_eq!(simulated_makespan(&tasks, 100), ms(4));
        assert_eq!(simulated_makespan(&[], 3), Duration::ZERO);
    }

    /// The pre-heap implementation: a linear min-scan per task, first
    /// minimum on ties. Kept verbatim as the behavioral oracle.
    fn makespan_linear_reference(tasks: &[Duration], slots: usize) -> Duration {
        let slots = slots.max(1);
        let mut loads = vec![Duration::ZERO; slots];
        for &t in tasks {
            let min = loads
                .iter_mut()
                .min_by_key(|d| **d)
                .expect("slots is non-zero");
            *min += t;
        }
        loads.into_iter().max().unwrap_or(Duration::ZERO)
    }

    #[test]
    fn heap_makespan_matches_linear_reference() {
        // Deterministic pseudo-random task mixes, including heavy ties.
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for slots in [1usize, 2, 3, 7, 16, 100] {
            for n in [0usize, 1, 5, 40, 257] {
                let tasks: Vec<Duration> = (0..n)
                    .map(|_| Duration::from_micros(next() % 50)) // % 50 forces ties
                    .collect();
                assert_eq!(
                    simulated_makespan(&tasks, slots),
                    makespan_linear_reference(&tasks, slots),
                    "divergence at slots={slots}, n={n}"
                );
            }
        }
    }
}
