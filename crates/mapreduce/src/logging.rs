//! A tiny leveled stderr logger — the observability substrate's fourth
//! leg, replacing ad-hoc `eprintln!`s across the job driver, the CLI and
//! the HTTP server with one consistent, filterable stream.
//!
//! Dependency-free by design (like the rest of the workspace): one atomic
//! holds the active level, one `OnceLock<Instant>` anchors a monotonic
//! timestamp, and each record is a single `write_all` so concurrent
//! workers never interleave mid-line.
//!
//! The level comes from `NGRAM_MR_LOG` (`error`, `warn`, `info`,
//! `debug`; default `warn`), read once on first use. Emit through the
//! [`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info) and [`log_debug!`](crate::log_debug)
//! macros, which evaluate their format arguments only when the level is
//! enabled:
//!
//! ```
//! mapreduce::log_warn!("doctest", "task {} failed, retrying", 7);
//! assert!(!mapreduce::logging::enabled(mapreduce::logging::Level::Debug)
//!     || mapreduce::logging::enabled(mapreduce::logging::Level::Warn));
//! ```
//!
//! Record shape (stderr, one line):
//!
//! ```text
//! [   12.345s WARN  job] map task 3 attempt 0 failed: …; retrying in 10 ms
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems surfaced to the operator.
    Error = 0,
    /// Degraded-but-continuing events (task retries, shed connections).
    Warn = 1,
    /// Progress milestones (job start/finish, index mounts).
    Info = 2,
    /// Per-request / per-task detail (HTTP access log).
    Debug = 3,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "not initialized yet" in the level atomic.
const UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn active_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        UNSET => {
            let level = std::env::var("NGRAM_MR_LOG")
                .ok()
                .and_then(|v| Level::parse(&v))
                .unwrap_or(Level::Warn);
            LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Override the active level programmatically (tests, CLI flags). Wins
/// over `NGRAM_MR_LOG` from the moment it is called.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether records at `level` are currently emitted. The macros check
/// this before evaluating their format arguments, so a disabled
/// `log_debug!` in a hot loop costs one relaxed load and one branch.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= active_level()
}

/// Seconds since the logger first ran (monotonic; independent of wall
/// clock adjustments).
fn uptime_secs() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Emit one record. Use the macros instead of calling this directly —
/// they carry the level check.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    // One formatted buffer, one write: concurrent workers cannot
    // interleave halves of each other's lines.
    let line = format!(
        "[{:>9.3}s {:<5} {}] {}\n",
        uptime_secs(),
        level.name(),
        target,
        args
    );
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Log at [`Level::Error`]: `log_error!(target, fmt, args…)`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Error) {
            $crate::logging::log($crate::logging::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`]: `log_warn!(target, fmt, args…)`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Warn) {
            $crate::logging::log($crate::logging::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`]: `log_info!(target, fmt, args…)`.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Info) {
            $crate::logging::log($crate::logging::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`]: `log_debug!(target, fmt, args…)`.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging::enabled($crate::logging::Level::Debug) {
            $crate::logging::log($crate::logging::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse(" Debug "), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn set_level_gates_enabled() {
        // Tests in this binary share the atomic; set it explicitly
        // rather than relying on the environment.
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Warn);
        assert!(!enabled(Level::Info));
    }
}
