//! Record sinks: where a job's reduce output goes.
//!
//! [`Job::run_streamed`](crate::Job::run_streamed) creates one
//! [`RecordSink`](crate::RecordSink) per reduce task through a
//! [`RecordSinkFactory`] and seals it into a per-task *artifact* when the
//! task finishes. The factory choice decides the job's memory profile:
//!
//! * [`VecSinkFactory`] — collect typed records per partition (the
//!   materialized `Job::run` path);
//! * [`RunSinkFactory`] — serialize records into [`Run`]s (in memory or on
//!   disk), ready to feed a chained job through
//!   [`RunRecordSource`](crate::RunRecordSource) without ever forming a
//!   `Vec<(K, V)>`;
//! * [`WriterSinkFactory`] — format records as text and stream them to a
//!   shared writer *during* reduce (the CLI's `--out` path);
//! * [`CountingSinkFactory`] — discard records, keep a count (tests,
//!   dry runs).
//!
//! Sinks swallow I/O errors at `push` time (the [`RecordSink`] contract is
//! infallible, because combiners share it) and surface them when sealed.

use crate::error::{MrError, Result};
use crate::io::Writable;
use crate::run::{Run, RunCodec, RunWriter, TempDir};
use crate::task::{RecordSink, VecSink};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// Creates one sink per reduce task and seals finished sinks into
/// per-partition artifacts.
pub trait RecordSinkFactory<K, V>: Sync {
    /// The per-task sink type.
    type Sink: RecordSink<K, V> + Send;
    /// What a sealed sink leaves behind (records, a run, a count, …).
    type Artifact: Send;

    /// Create the sink of reduce task `partition`.
    fn make(&self, partition: usize) -> Result<Self::Sink>;

    /// Seal a finished sink, surfacing any deferred write error.
    fn seal(&self, partition: usize, sink: Self::Sink) -> Result<Self::Artifact>;

    /// Durably persist a sealed artifact under the job's checkpoint
    /// manifest directory, returning the bytes written. `Ok(None)` — the
    /// default — means this sink kind does not checkpoint its output and
    /// the partition is simply re-run on resume (the writer sink's shared
    /// output stream, for instance, is rebuilt from scratch anyway).
    fn checkpoint(
        &self,
        _partition: usize,
        _artifact: &Self::Artifact,
        _dir: &std::path::Path,
    ) -> Result<Option<u64>> {
        Ok(None)
    }

    /// Reopen the artifact [`RecordSinkFactory::checkpoint`] persisted for
    /// `partition`, if this sink kind supports it and the files are intact.
    /// `Ok(None)` means "nothing restorable — re-run the partition".
    fn restore(&self, _partition: usize, _dir: &std::path::Path) -> Result<Option<Self::Artifact>> {
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// VecSinkFactory
// ---------------------------------------------------------------------------

/// Factory collecting typed records into one vector per reduce task.
pub struct VecSinkFactory<K, V> {
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K, V> Default for VecSinkFactory<K, V> {
    fn default() -> Self {
        VecSinkFactory {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<K: Send, V: Send> RecordSinkFactory<K, V> for VecSinkFactory<K, V> {
    type Sink = VecSink<K, V>;
    type Artifact = Vec<(K, V)>;

    fn make(&self, _partition: usize) -> Result<VecSink<K, V>> {
        Ok(VecSink { out: Vec::new() })
    }

    fn seal(&self, _partition: usize, sink: VecSink<K, V>) -> Result<Vec<(K, V)>> {
        Ok(sink.out)
    }
}

// ---------------------------------------------------------------------------
// RunSinkFactory
// ---------------------------------------------------------------------------

/// Factory serializing reduce output into one [`Run`] per task — the job
/// boundary of a chained pipeline. With spilling enabled the records go to
/// files in a temporary directory, bounding chained-job state by buffers.
pub struct RunSinkFactory<K, V> {
    spill_to_disk: bool,
    temp: Option<Arc<TempDir>>,
    codec: RunCodec,
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K: Writable, V: Writable> RunSinkFactory<K, V> {
    /// In-memory runs.
    pub fn mem() -> Self {
        RunSinkFactory {
            spill_to_disk: false,
            temp: None,
            codec: RunCodec::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// File-backed runs inside `temp`.
    pub fn disk(temp: Arc<TempDir>) -> Self {
        RunSinkFactory {
            spill_to_disk: true,
            temp: Some(temp),
            codec: RunCodec::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Encode the produced runs with `codec` (keys arrive in reduce
    /// output order, so front coding pays off whenever consecutive keys
    /// share prefixes — e.g. job-chained n-gram streams).
    pub fn codec(mut self, codec: RunCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Mirror a job's spill configuration: file-backed when
    /// `spill_to_disk`, in-memory otherwise.
    pub fn with_spill(spill_to_disk: bool, base: Option<&std::path::Path>) -> Result<Self> {
        if spill_to_disk {
            Ok(Self::disk(Arc::new(TempDir::create(base)?)))
        } else {
            Ok(Self::mem())
        }
    }

    /// The spill directory, if file-backed. Hand this to the
    /// [`RunRecordSource`](crate::RunRecordSource) consuming the runs so
    /// the directory outlives the readers.
    pub fn temp(&self) -> Option<Arc<TempDir>> {
        self.temp.clone()
    }
}

/// Sink serializing records into one run; errors are deferred to `seal`.
pub struct RunSink<K, V> {
    writer: Option<RunWriter>,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
    error: Option<MrError>,
    _marker: std::marker::PhantomData<fn(K, V)>,
}

impl<K: Writable, V: Writable> RecordSink<K, V> for RunSink<K, V> {
    fn push(&mut self, k: K, v: V) {
        if self.error.is_some() {
            return;
        }
        self.key_buf.clear();
        self.val_buf.clear();
        k.write_to(&mut self.key_buf);
        v.write_to(&mut self.val_buf);
        let writer = self.writer.as_mut().expect("sink sealed twice");
        if let Err(e) = writer.write_record(&self.key_buf, &self.val_buf) {
            self.error = Some(e);
        }
    }
}

impl<K, V> RecordSinkFactory<K, V> for RunSinkFactory<K, V>
where
    K: Writable + Send,
    V: Writable + Send,
{
    type Sink = RunSink<K, V>;
    type Artifact = Run;

    fn make(&self, _partition: usize) -> Result<RunSink<K, V>> {
        let writer = if self.spill_to_disk {
            RunWriter::file_codec(
                self.temp.as_ref().expect("disk sink requires a temp dir"),
                self.codec,
            )?
        } else {
            RunWriter::mem_codec(self.codec)
        };
        Ok(RunSink {
            writer: Some(writer),
            key_buf: Vec::new(),
            val_buf: Vec::new(),
            error: None,
            _marker: std::marker::PhantomData,
        })
    }

    fn seal(&self, _partition: usize, mut sink: RunSink<K, V>) -> Result<Run> {
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        sink.writer.take().expect("sink sealed twice").finish()
    }

    /// Persist the sealed run as `reduce-NNN.run` plus a CRC-guarded
    /// `reduce-NNN.meta` descriptor — what lets chained (APRIORI) jobs
    /// resume with their intermediate reduce output intact.
    fn checkpoint(
        &self,
        partition: usize,
        artifact: &Run,
        dir: &std::path::Path,
    ) -> Result<Option<u64>> {
        let rel = format!("reduce-{partition:03}.run");
        let mut bytes = artifact.persist_to(&dir.join(&rel))?;
        bytes += crate::checkpoint::write_record_file(
            &dir.join(format!("reduce-{partition:03}.meta")),
            &[format!(
                "run\t{rel}\t{}\t{}\t{}\t{}",
                artifact.records,
                artifact.bytes,
                artifact.raw_bytes,
                artifact.codec.name()
            )],
        )?;
        Ok(Some(bytes))
    }

    fn restore(&self, partition: usize, dir: &std::path::Path) -> Result<Option<Run>> {
        let meta = dir.join(format!("reduce-{partition:03}.meta"));
        if !meta.is_file() {
            return Ok(None);
        }
        let lines = crate::checkpoint::read_record_file(&meta)?;
        let bad = || MrError::Config(format!("malformed reduce meta {}", meta.display()));
        let line = lines.first().ok_or_else(bad)?;
        let fields: Vec<&str> = line.split('\t').collect();
        let ["run", rel, records, bytes, raw_bytes, codec] = fields[..] else {
            return Err(bad());
        };
        let path = dir.join(rel);
        if !path.is_file() {
            return Err(MrError::Config(format!(
                "reduce meta references missing run file {rel}"
            )));
        }
        Ok(Some(Run::from_file(
            path,
            records.parse().map_err(|_| bad())?,
            bytes.parse().map_err(|_| bad())?,
            raw_bytes.parse().map_err(|_| bad())?,
            RunCodec::parse(codec).ok_or_else(bad)?,
        )))
    }
}

// ---------------------------------------------------------------------------
// WriterSinkFactory
// ---------------------------------------------------------------------------

/// How many formatted bytes a writer sink buffers in memory before
/// overflowing to its private spool file.
const WRITER_SINK_FLUSH_BYTES: usize = 64 * 1024;

/// Process-unique sequence for spool-file names.
static SPOOL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Private overflow file of one [`WriterSink`]: formatted bytes beyond the
/// in-memory budget accumulate here instead of escaping to the shared
/// writer mid-task, so a failed (and retried) reduce attempt leaves no
/// partial output behind — the spool is simply dropped, which removes the
/// file.
struct Spool {
    path: std::path::PathBuf,
    file: std::io::BufWriter<std::fs::File>,
}

impl Spool {
    fn create() -> Result<Spool> {
        let path = std::env::temp_dir().join(format!(
            "mr-writer-spool-{}-{}.tmp",
            std::process::id(),
            SPOOL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::File::create(&path)?;
        Ok(Spool {
            path,
            file: std::io::BufWriter::new(file),
        })
    }
}

impl Drop for Spool {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A full buffer or a flush barrier, handed to the dedicated writer
/// thread of a pipelined [`WriterSinkFactory`].
enum WriterMsg {
    Buf(Vec<u8>),
    Flush(SyncSender<()>),
}

enum WriterBackend {
    /// Formatted bytes are written under a lock on the reduce thread —
    /// the synchronous path.
    Direct(Mutex<Box<dyn Write + Send>>),
    /// Full buffers are handed to a dedicated writer thread through a
    /// bounded channel (double buffering: one buffer being written, one
    /// in flight), so reduce compute overlaps downstream output I/O.
    Threaded {
        tx: Mutex<Option<SyncSender<WriterMsg>>>,
        handle: Mutex<Option<std::thread::JoinHandle<()>>>,
        /// First write/flush error, surfaced at the next drain or flush.
        error: Arc<Mutex<Option<MrError>>>,
    },
}

fn writer_thread(
    mut w: Box<dyn Write + Send>,
    rx: Receiver<WriterMsg>,
    error: Arc<Mutex<Option<MrError>>>,
) {
    let mut failed = false;
    for msg in rx {
        match msg {
            WriterMsg::Buf(buf) => {
                if failed {
                    continue; // drain without blocking the producers
                }
                if let Err(e) = w.write_all(&buf) {
                    *error.lock() = Some(e.into());
                    failed = true;
                }
            }
            WriterMsg::Flush(ack) => {
                if !failed {
                    if let Err(e) = w.flush() {
                        *error.lock() = Some(e.into());
                        failed = true;
                    }
                }
                let _ = ack.send(());
            }
        }
    }
}

struct SharedWriter {
    backend: WriterBackend,
    records: AtomicU64,
    /// Held for the whole of one sink's seal-time publish, so the spool's
    /// arbitrary-boundary chunks of different partitions never interleave
    /// mid-record in the shared output.
    seal_lock: Mutex<()>,
}

impl SharedWriter {
    fn direct(writer: Box<dyn Write + Send>) -> Self {
        SharedWriter {
            backend: WriterBackend::Direct(Mutex::new(writer)),
            records: AtomicU64::new(0),
            seal_lock: Mutex::new(()),
        }
    }

    fn threaded(writer: Box<dyn Write + Send>) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel::<WriterMsg>(1);
        let error: Arc<Mutex<Option<MrError>>> = Arc::new(Mutex::new(None));
        let thread_error = Arc::clone(&error);
        let handle = std::thread::spawn(move || writer_thread(writer, rx, thread_error));
        SharedWriter {
            backend: WriterBackend::Threaded {
                tx: Mutex::new(Some(tx)),
                handle: Mutex::new(Some(handle)),
                error,
            },
            records: AtomicU64::new(0),
            seal_lock: Mutex::new(()),
        }
    }

    fn drain(&self, buf: &mut Vec<u8>) -> Result<()> {
        if buf.is_empty() {
            return Ok(());
        }
        match &self.backend {
            WriterBackend::Direct(writer) => {
                writer.lock().write_all(buf)?;
                buf.clear();
                Ok(())
            }
            WriterBackend::Threaded { tx, error, .. } => {
                if let Some(e) = error.lock().take() {
                    return Err(e);
                }
                // Hand the full buffer over but keep the sink's capacity:
                // a bare `take` would leave a zero-capacity Vec that
                // regrows through doubling on every subsequent chunk.
                let full = std::mem::replace(buf, Vec::with_capacity(WRITER_SINK_FLUSH_BYTES));
                tx.lock()
                    .as_ref()
                    .expect("writer thread lives until drop")
                    .send(WriterMsg::Buf(full))
                    .map_err(|_| MrError::TaskPanic("output writer thread died".into()))
            }
        }
    }

    fn flush(&self) -> Result<()> {
        match &self.backend {
            WriterBackend::Direct(writer) => {
                writer.lock().flush()?;
                Ok(())
            }
            WriterBackend::Threaded { tx, error, .. } => {
                let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel::<()>(0);
                tx.lock()
                    .as_ref()
                    .expect("writer thread lives until drop")
                    .send(WriterMsg::Flush(ack_tx))
                    .map_err(|_| MrError::TaskPanic("output writer thread died".into()))?;
                let _ = ack_rx.recv();
                if let Some(e) = error.lock().take() {
                    return Err(e);
                }
                Ok(())
            }
        }
    }
}

impl Drop for SharedWriter {
    fn drop(&mut self) {
        if let WriterBackend::Threaded { tx, handle, .. } = &self.backend {
            drop(tx.lock().take());
            if let Some(h) = handle.lock().take() {
                let _ = h.join();
            }
        }
    }
}

/// Factory streaming formatted records to one shared writer. Each sink
/// buffers in memory, overflows to a private spool file, and publishes
/// everything to the shared writer only when its task is *sealed* — so a
/// failed reduce attempt contributes no partial output and a retried task
/// writes exactly once. Each partition's output is contiguous, but
/// partitions appear in task completion order — callers needing a global
/// order must sort downstream.
pub struct WriterSinkFactory<K, V, F>
where
    F: Fn(&mut Vec<u8>, &K, &V) + Send + Sync,
{
    shared: Arc<SharedWriter>,
    format: Arc<F>,
    _marker: std::marker::PhantomData<fn(K, V)>,
}

impl<K, V, F> WriterSinkFactory<K, V, F>
where
    F: Fn(&mut Vec<u8>, &K, &V) + Send + Sync,
{
    /// Stream records through `format` into `writer`, writing on the
    /// reduce threads (synchronous output).
    pub fn new(writer: Box<dyn Write + Send>, format: F) -> Self {
        WriterSinkFactory {
            shared: Arc::new(SharedWriter::direct(writer)),
            format: Arc::new(format),
            _marker: std::marker::PhantomData,
        }
    }

    /// Stream records through `format` into `writer` via a dedicated
    /// writer thread: sinks hand full buffers over a bounded channel
    /// (double buffering), so reduce compute overlaps output I/O. Write
    /// errors surface at the next drain, at [`WriterSinkFactory::flush`],
    /// or at seal time.
    pub fn pipelined(writer: Box<dyn Write + Send>, format: F) -> Self {
        WriterSinkFactory {
            shared: Arc::new(SharedWriter::threaded(writer)),
            format: Arc::new(format),
            _marker: std::marker::PhantomData,
        }
    }

    /// Total records written across all sealed sinks.
    pub fn records(&self) -> u64 {
        self.shared.records.load(Ordering::Relaxed)
    }

    /// Flush the underlying writer (call after the last job completes).
    /// On the pipelined backend this is a barrier: it returns once the
    /// writer thread has drained and flushed everything handed to it.
    pub fn flush(&self) -> Result<()> {
        self.shared.flush()
    }
}

/// Per-task sink of a [`WriterSinkFactory`]; buffers locally (memory,
/// then a private spool file) and publishes at seal time.
pub struct WriterSink<K, V, F>
where
    F: Fn(&mut Vec<u8>, &K, &V) + Send + Sync,
{
    shared: Arc<SharedWriter>,
    format: Arc<F>,
    buf: Vec<u8>,
    /// Overflow spool, created lazily at the first full buffer. Dropping
    /// the sink unsealed (failed attempt) removes the file.
    spool: Option<Spool>,
    records: u64,
    error: Option<MrError>,
    _marker: std::marker::PhantomData<fn(K, V)>,
}

impl<K, V, F> WriterSink<K, V, F>
where
    F: Fn(&mut Vec<u8>, &K, &V) + Send + Sync,
{
    fn spill_to_spool(&mut self) -> Result<()> {
        if self.spool.is_none() {
            self.spool = Some(Spool::create()?);
        }
        let spool = self.spool.as_mut().expect("spool was just created");
        spool.file.write_all(&self.buf)?;
        self.buf.clear();
        Ok(())
    }
}

impl<K, V, F> RecordSink<K, V> for WriterSink<K, V, F>
where
    F: Fn(&mut Vec<u8>, &K, &V) + Send + Sync,
{
    fn push(&mut self, k: K, v: V) {
        if self.error.is_some() {
            return;
        }
        (self.format)(&mut self.buf, &k, &v);
        self.records += 1;
        if self.buf.len() >= WRITER_SINK_FLUSH_BYTES {
            if let Err(e) = self.spill_to_spool() {
                self.error = Some(e);
            }
        }
    }
}

impl<K, V, F> RecordSinkFactory<K, V> for WriterSinkFactory<K, V, F>
where
    K: Send,
    V: Send,
    F: Fn(&mut Vec<u8>, &K, &V) + Send + Sync,
{
    type Sink = WriterSink<K, V, F>;
    type Artifact = u64;

    fn make(&self, _partition: usize) -> Result<WriterSink<K, V, F>> {
        Ok(WriterSink {
            shared: Arc::clone(&self.shared),
            format: Arc::clone(&self.format),
            buf: Vec::new(),
            spool: None,
            records: 0,
            error: None,
            _marker: std::marker::PhantomData,
        })
    }

    fn seal(&self, _partition: usize, mut sink: WriterSink<K, V, F>) -> Result<u64> {
        if let Some(e) = sink.error.take() {
            return Err(e);
        }
        // Publish spool + tail as one unit: the lock keeps this task's
        // bytes contiguous in the shared output even when other tasks
        // seal concurrently.
        let _publish = sink.shared.seal_lock.lock();
        if let Some(mut spool) = sink.spool.take() {
            spool.file.flush()?;
            let mut rd = std::fs::File::open(&spool.path)?;
            let mut chunk = vec![0u8; WRITER_SINK_FLUSH_BYTES];
            loop {
                let n = rd.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                let mut out = chunk[..n].to_vec();
                sink.shared.drain(&mut out)?;
            }
            // `spool` drops here, removing its file.
        }
        sink.shared.drain(&mut sink.buf)?;
        sink.shared
            .records
            .fetch_add(sink.records, Ordering::Relaxed);
        Ok(sink.records)
    }
}

// ---------------------------------------------------------------------------
// CountingSinkFactory
// ---------------------------------------------------------------------------

/// Factory that discards records and keeps only a total count — proof that
/// a pipeline can terminate without materializing records anywhere.
#[derive(Default)]
pub struct CountingSinkFactory {
    total: AtomicU64,
}

impl CountingSinkFactory {
    /// New factory with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records counted across all sealed sinks.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Per-task sink of a [`CountingSinkFactory`].
pub struct CountingSink {
    records: u64,
}

impl<K, V> RecordSink<K, V> for CountingSink {
    fn push(&mut self, _k: K, _v: V) {
        self.records += 1;
    }
}

impl<K: Send, V: Send> RecordSinkFactory<K, V> for CountingSinkFactory {
    type Sink = CountingSink;
    type Artifact = u64;

    fn make(&self, _partition: usize) -> Result<CountingSink> {
        Ok(CountingSink { records: 0 })
    }

    fn seal(&self, _partition: usize, sink: CountingSink) -> Result<u64> {
        self.total.fetch_add(sink.records, Ordering::Relaxed);
        Ok(sink.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::for_each_run_record;

    #[test]
    fn run_sink_round_trips_records() {
        let factory = RunSinkFactory::<u32, u64>::mem();
        let mut sink = factory.make(0).unwrap();
        for i in 0..10u32 {
            sink.push(i, u64::from(i) * 3);
        }
        let run = factory.seal(0, sink).unwrap();
        assert_eq!(run.records, 10);
        let mut got = Vec::new();
        for_each_run_record::<u32, u64>(std::slice::from_ref(&run), |k, v| {
            got.push((k, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            got,
            (0..10).map(|i| (i, u64::from(i) * 3)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn disk_run_sink_spills_to_temp_dir() {
        let factory = RunSinkFactory::<u32, u64>::with_spill(true, None).unwrap();
        let temp = factory.temp().expect("disk factory has a temp dir");
        let mut sink = factory.make(0).unwrap();
        sink.push(7, 42);
        let run = factory.seal(0, sink).unwrap();
        assert_eq!(run.records, 1);
        assert!(
            std::fs::read_dir(temp.path()).unwrap().count() > 0,
            "run must be a file in the spill dir"
        );
    }

    #[test]
    fn writer_sink_streams_formatted_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let factory = WriterSinkFactory::new(
            Box::new(Shared(Arc::clone(&buf))),
            |out: &mut Vec<u8>, k: &u32, v: &u64| {
                out.extend_from_slice(format!("{v}\t{k}\n").as_bytes());
            },
        );
        let mut a = factory.make(0).unwrap();
        let mut b = factory.make(1).unwrap();
        a.push(1, 10);
        b.push(2, 20);
        assert_eq!(factory.seal(0, a).unwrap(), 1);
        assert_eq!(factory.seal(1, b).unwrap(), 1);
        factory.flush().unwrap();
        assert_eq!(factory.records(), 2);
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["10\t1", "20\t2"]);
    }

    #[test]
    fn pipelined_writer_sink_matches_direct_output() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let format = |out: &mut Vec<u8>, k: &u32, v: &u64| {
            out.extend_from_slice(format!("{v}\t{k}\n").as_bytes());
        };
        let mut outputs: Vec<Vec<String>> = Vec::new();
        for pipelined in [false, true] {
            let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
            let writer: Box<dyn Write + Send> = Box::new(Shared(Arc::clone(&buf)));
            let factory = if pipelined {
                WriterSinkFactory::pipelined(writer, format)
            } else {
                WriterSinkFactory::new(writer, format)
            };
            let mut sink = factory.make(0).unwrap();
            // Enough bytes to force several 64 KiB hand-offs.
            for i in 0..20_000u32 {
                sink.push(i, u64::from(i) * 7);
            }
            assert_eq!(factory.seal(0, sink).unwrap(), 20_000);
            factory.flush().unwrap();
            assert_eq!(factory.records(), 20_000);
            let text = String::from_utf8(buf.lock().clone()).unwrap();
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            lines.sort_unstable();
            outputs.push(lines);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0].len(), 20_000);
    }

    #[test]
    fn counting_sink_totals_across_tasks() {
        let factory = CountingSinkFactory::new();
        let mut a = RecordSinkFactory::<u32, u64>::make(&factory, 0).unwrap();
        let mut b = RecordSinkFactory::<u32, u64>::make(&factory, 1).unwrap();
        RecordSink::<u32, u64>::push(&mut a, 1, 1);
        RecordSink::<u32, u64>::push(&mut a, 2, 2);
        RecordSink::<u32, u64>::push(&mut b, 3, 3);
        assert_eq!(
            RecordSinkFactory::<u32, u64>::seal(&factory, 0, a).unwrap(),
            2
        );
        assert_eq!(
            RecordSinkFactory::<u32, u64>::seal(&factory, 1, b).unwrap(),
            1
        );
        assert_eq!(factory.total(), 3);
    }
}
