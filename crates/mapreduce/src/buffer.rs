//! The map-side sort buffer: a record arena per partition, spilled as sorted
//! runs when the configured budget is exceeded.
//!
//! This mirrors Hadoop's `MapOutputBuffer`: records are serialized once at
//! `emit`, sorted *as bytes* through a [`RawComparator`] over an offset
//! array (no deserialization, no per-record allocation), optionally fed
//! through a combiner at each spill, and written out as runs.

use crate::comparator::RawComparator;
use crate::counters::{Counter, Counters};
use crate::error::{MrError, Result};
use crate::io::Writable;
use crate::run::{Run, RunCodec, RunWriter, TempDir};
use crate::task::{BoxedCombiner, RecordSink, ReduceContext, Reducer};
use crate::values::ValueIter;
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

/// Offsets of one record inside a [`RecordArena`], plus the cached
/// order-consistent key digest ([`RawComparator::sort_prefix`]) filled in
/// at sort time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RecMeta {
    pub key_start: u32,
    pub key_end: u32,
    pub val_end: u32,
    /// `sort_prefix` digest of the key; `0` until [`RecordArena::sort`].
    pub prefix: u64,
}

/// Contiguous byte arena holding serialized records plus an offset array.
#[derive(Default)]
pub(crate) struct RecordArena {
    pub data: Vec<u8>,
    pub meta: Vec<RecMeta>,
}

impl RecordArena {
    /// Serialize one record into the arena; returns (key_len, val_len).
    fn append<K: Writable, V: Writable>(&mut self, k: &K, v: &V) -> (usize, usize) {
        let key_start = self.data.len();
        k.write_to(&mut self.data);
        let key_end = self.data.len();
        v.write_to(&mut self.data);
        let val_end = self.data.len();
        debug_assert!(val_end <= u32::MAX as usize, "arena exceeds 4 GiB");
        self.meta.push(RecMeta {
            key_start: key_start as u32,
            key_end: key_end as u32,
            val_end: val_end as u32,
            prefix: 0,
        });
        (key_end - key_start, val_end - key_end)
    }

    #[inline]
    pub(crate) fn key(&self, m: &RecMeta) -> &[u8] {
        &self.data[m.key_start as usize..m.key_end as usize]
    }

    #[inline]
    pub(crate) fn val(&self, m: &RecMeta) -> &[u8] {
        &self.data[m.key_end as usize..m.val_end as usize]
    }

    /// Sort the offset array by key. With `prefix_sort`, each record's
    /// [`RawComparator::sort_prefix`] digest is computed once and cached in
    /// its [`RecMeta`], and comparisons resolve on an inline `u64` compare,
    /// falling through to the dyn-dispatch decoding comparator only on
    /// digest ties; without it, every comparison goes through the
    /// comparator (the pre-digest behavior, kept as the bench baseline).
    fn sort(&mut self, cmp: &dyn RawComparator, prefix_sort: bool) {
        let data = &self.data;
        if prefix_sort {
            for m in &mut self.meta {
                m.prefix = cmp.sort_prefix(&data[m.key_start as usize..m.key_end as usize]);
            }
            self.meta.sort_unstable_by(|a, b| {
                a.prefix.cmp(&b.prefix).then_with(|| {
                    cmp.compare(
                        &data[a.key_start as usize..a.key_end as usize],
                        &data[b.key_start as usize..b.key_end as usize],
                    )
                })
            });
        } else {
            self.meta.sort_unstable_by(|a, b| {
                cmp.compare(
                    &data[a.key_start as usize..a.key_end as usize],
                    &data[b.key_start as usize..b.key_end as usize],
                )
            });
        }
    }

    fn clear(&mut self) {
        self.data.clear();
        self.meta.clear();
    }

    fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    fn bytes(&self) -> usize {
        self.data.len() + self.meta.len() * std::mem::size_of::<RecMeta>()
    }
}

/// Factory producing a fresh combiner instance for each spill.
pub type CombinerFactory<K, V> = Arc<dyn Fn() -> BoxedCombiner<K, V> + Send + Sync>;

/// Shuffle-relevant knobs of one map task's collector, extracted from the
/// job configuration.
#[derive(Clone, Debug)]
pub(crate) struct CollectorConfig {
    pub sort_buffer_bytes: usize,
    pub spill_to_disk: bool,
    /// Codec spill runs are encoded with.
    pub run_codec: RunCodec,
    /// Cache `sort_prefix` digests and compare them inline before falling
    /// back to the raw comparator.
    pub prefix_sort: bool,
    /// Hand full sort buffers to a dedicated spill-writer thread so the
    /// sort + encode + write runs off the mapper thread, double-buffering
    /// the arena (mapping continues into a fresh buffer during the spill).
    pub pipelined: bool,
    /// Injected-fault schedule (spill EIO, read-side frame corruption),
    /// propagated into every run this collector seals.
    pub fault: Option<Arc<crate::fault::FaultPlan>>,
}

/// One dispatched spill: the non-empty arenas of a full sort buffer,
/// tagged with their partitions.
type SpillBatch = Vec<(usize, RecordArena)>;

/// What the spill-writer thread leaves behind: per-partition runs plus
/// the first error it hit (if any).
type SpillOutcome = (Vec<Vec<Run>>, Option<MrError>);

/// The dedicated spill-writer half of a pipelined collector.
struct SpillPipeline {
    tx: Option<SyncSender<SpillBatch>>,
    handle: Option<std::thread::JoinHandle<SpillOutcome>>,
}

/// Per-map-task output collector.
pub(crate) struct MapOutputCollector<K, V>
where
    K: Writable + Send + 'static,
    V: Writable + Send + 'static,
{
    arenas: Vec<RecordArena>,
    runs: Vec<Vec<Run>>,
    config: CollectorConfig,
    temp: Option<Arc<TempDir>>,
    cmp: Arc<dyn RawComparator>,
    combiner_f: Option<CombinerFactory<K, V>>,
    counters: Arc<Counters>,
    /// Spill-writer thread, spawned lazily at the first pipelined spill.
    pipeline: Option<SpillPipeline>,
}

impl<K, V> MapOutputCollector<K, V>
where
    K: Writable + Send + 'static,
    V: Writable + Send + 'static,
{
    pub(crate) fn new(
        num_partitions: usize,
        config: CollectorConfig,
        temp: Option<Arc<TempDir>>,
        cmp: Arc<dyn RawComparator>,
        combiner_f: Option<CombinerFactory<K, V>>,
        counters: Arc<Counters>,
    ) -> Self {
        MapOutputCollector {
            arenas: (0..num_partitions)
                .map(|_| RecordArena::default())
                .collect(),
            runs: (0..num_partitions).map(|_| Vec::new()).collect(),
            config,
            temp,
            cmp,
            combiner_f,
            counters,
            pipeline: None,
        }
    }

    /// Serialize and collect one record for `partition`.
    pub(crate) fn emit(&mut self, partition: usize, k: &K, v: &V) -> Result<()> {
        let (klen, vlen) = self.arenas[partition].append(k, v);
        self.counters.inc(Counter::MapOutputRecords);
        self.counters
            .add(Counter::MapOutputBytes, (klen + vlen) as u64);
        if self.buffered_bytes() > self.config.sort_buffer_bytes {
            if self.config.pipelined {
                self.dispatch_spill()?;
            } else {
                self.spill()?;
            }
        }
        Ok(())
    }

    fn buffered_bytes(&self) -> usize {
        self.arenas.iter().map(RecordArena::bytes).sum()
    }

    /// Sort, combine and write out every non-empty arena as one run each
    /// (the synchronous path: everything on the mapper thread).
    fn spill(&mut self) -> Result<()> {
        self.counters.inc(Counter::Spills);
        for p in 0..self.arenas.len() {
            if self.arenas[p].is_empty() {
                continue;
            }
            let arena = std::mem::take(&mut self.arenas[p]);
            let (run, mut arena) = spill_arena(
                arena,
                &self.config,
                self.temp.as_deref(),
                self.cmp.as_ref(),
                self.combiner_f.as_deref(),
                &self.counters,
            )?;
            if !run.is_empty() {
                self.runs[p].push(run);
            }
            arena.clear();
            self.arenas[p] = arena; // keep the allocation for reuse
        }
        Ok(())
    }

    /// Hand the full sort buffer to the spill-writer thread (spawned at
    /// the first mid-map spill) and continue mapping into fresh arenas.
    fn dispatch_spill(&mut self) -> Result<()> {
        let mut pipe = match self.pipeline.take() {
            Some(p) => p,
            None => self.spawn_spill_writer(),
        };
        let res = self.dispatch_to(&mut pipe, false);
        self.pipeline = Some(pipe);
        res
    }

    /// Offer every non-empty arena to the spill writer — without ever
    /// blocking on it: if the writer is still busy with the previous
    /// buffer (`try_send` on the rendezvous channel fails), the mapper
    /// spills this buffer *inline* instead of waiting. On a parallel host
    /// that is work-sharing (both threads encode concurrently); on a
    /// single core it degrades gracefully to the synchronous path instead
    /// of paying context switches to wait. `final_barrier` (task end, no
    /// mapping left to overlap) sends blocking, and that wait is the
    /// pipeline stall recorded in [`Counter::SpillStallNanos`].
    fn dispatch_to(&mut self, pipe: &mut SpillPipeline, final_barrier: bool) -> Result<()> {
        let batch: SpillBatch = self
            .arenas
            .iter_mut()
            .enumerate()
            .filter(|(_, a)| !a.is_empty())
            .map(|(p, a)| (p, std::mem::take(a)))
            .collect();
        if batch.is_empty() {
            return Ok(());
        }
        self.counters.inc(Counter::Spills);
        let tx = pipe
            .tx
            .as_ref()
            .expect("pipeline sender lives until finish");
        if final_barrier {
            let waited = Instant::now();
            let sent = tx.send(batch);
            self.counters
                .add(Counter::SpillStallNanos, waited.elapsed().as_nanos() as u64);
            return sent.map_err(|_| MrError::TaskPanic("spill-writer thread died".into()));
        }
        match tx.try_send(batch) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::TrySendError::Full(batch)) => self.spill_batch_inline(batch),
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {
                Err(MrError::TaskPanic("spill-writer thread died".into()))
            }
        }
    }

    /// Spill a dispatched batch on the mapper thread (the `try_send`
    /// fallback when the writer is busy).
    fn spill_batch_inline(&mut self, batch: SpillBatch) -> Result<()> {
        for (p, arena) in batch {
            let (run, _) = spill_arena(
                arena,
                &self.config,
                self.temp.as_deref(),
                self.cmp.as_ref(),
                self.combiner_f.as_deref(),
                &self.counters,
            )?;
            if !run.is_empty() {
                self.runs[p].push(run);
            }
        }
        Ok(())
    }

    fn spawn_spill_writer(&self) -> SpillPipeline {
        // Rendezvous channel: at most one full sort buffer is in flight
        // (being written) while the mapper fills the next one — the
        // promised double buffer, bounding collector memory at two sort
        // buffers.
        let (tx, rx) = std::sync::mpsc::sync_channel::<SpillBatch>(0);
        let num_partitions = self.arenas.len();
        let config = self.config.clone();
        let temp = self.temp.clone();
        let cmp = Arc::clone(&self.cmp);
        let combiner_f = self.combiner_f.clone();
        let counters = Arc::clone(&self.counters);
        let handle = std::thread::spawn(move || {
            let mut runs: Vec<Vec<Run>> = (0..num_partitions).map(|_| Vec::new()).collect();
            let mut error: Option<MrError> = None;
            for batch in rx {
                if error.is_some() {
                    continue; // drain without blocking the mapper
                }
                for (p, arena) in batch {
                    match spill_arena(
                        arena,
                        &config,
                        temp.as_deref(),
                        cmp.as_ref(),
                        combiner_f.as_deref(),
                        &counters,
                    ) {
                        Ok((run, _)) => {
                            if !run.is_empty() {
                                runs[p].push(run);
                            }
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
            }
            (runs, error)
        });
        SpillPipeline {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Final spill; returns the per-partition runs of this map task.
    pub(crate) fn finish(mut self) -> Result<Vec<Vec<Run>>> {
        // A pipelined task whose buffer never filled mid-map has nothing
        // left to overlap the final spill with — run it inline rather
        // than paying for a thread that would only be waited on.
        if let Some(mut pipe) = self.pipeline.take() {
            self.dispatch_to(&mut pipe, true)?;
            drop(pipe.tx.take());
            // Waiting for the writer to drain the tail is a stall too:
            // there is no mapping left to overlap it with.
            let waited = Instant::now();
            let joined = pipe.handle.take().expect("handle set at spawn").join();
            self.counters
                .add(Counter::SpillStallNanos, waited.elapsed().as_nanos() as u64);
            let (worker_runs, error) =
                joined.map_err(|_| MrError::TaskPanic("spill-writer thread panicked".into()))?;
            if let Some(e) = error {
                return Err(e);
            }
            // Inline-fallback spills landed in `self.runs`; merge in what
            // the writer thread produced.
            for (p, rs) in worker_runs.into_iter().enumerate() {
                self.runs[p].extend(rs);
            }
            return Ok(std::mem::take(&mut self.runs));
        }
        if self.arenas.iter().any(|a| !a.is_empty()) {
            self.spill()?;
        }
        Ok(std::mem::take(&mut self.runs))
    }
}

/// Sort one arena, run the combiner over its groups (when configured),
/// and write it out as a sealed run — the per-partition spill work,
/// shared verbatim by the synchronous path and the spill-writer thread.
/// Returns the run plus the arena for buffer reuse.
fn spill_arena<K, V>(
    mut arena: RecordArena,
    config: &CollectorConfig,
    temp: Option<&TempDir>,
    cmp: &dyn RawComparator,
    combiner_f: Option<&(dyn Fn() -> BoxedCombiner<K, V> + Send + Sync)>,
    counters: &Counters,
) -> Result<(Run, RecordArena)>
where
    K: Writable + Send,
    V: Writable + Send,
{
    let sort_started = Instant::now();
    arena.sort(cmp, config.prefix_sort);
    counters.add(
        Counter::MapSortNanos,
        sort_started.elapsed().as_nanos() as u64,
    );
    if let Some(plan) = &config.fault {
        plan.check_spill_write()?;
    }
    let mut writer = if config.spill_to_disk {
        RunWriter::file_codec(
            temp.expect("spill_to_disk requires a temp dir"),
            config.run_codec,
        )?
    } else {
        RunWriter::mem_codec(config.run_codec)
    };
    match combiner_f {
        Some(f) => {
            let mut combiner = f();
            combine_into(&arena, cmp, combiner.as_mut(), &mut writer, counters)?;
        }
        None => {
            for m in &arena.meta {
                writer.write_record(arena.key(m), arena.val(m))?;
            }
        }
    }
    let mut run = writer.finish()?;
    run.fault = config.fault.clone();
    counters.add(Counter::ShuffleBytes, run.bytes);
    counters.add(Counter::RawRunBytes, run.raw_bytes);
    counters.add(Counter::EncodedRunBytes, run.bytes);
    Ok((run, arena))
}

/// Sink that serializes combiner output straight into a run writer.
struct CombineSink<'a> {
    writer: &'a mut RunWriter,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
    error: Option<crate::error::MrError>,
}

impl<K: Writable, V: Writable> RecordSink<K, V> for CombineSink<'_> {
    fn push(&mut self, k: K, v: V) {
        self.key_buf.clear();
        self.val_buf.clear();
        k.write_to(&mut self.key_buf);
        v.write_to(&mut self.val_buf);
        if let Err(e) = self.writer.write_record(&self.key_buf, &self.val_buf) {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

/// Run `combiner` over the sorted groups of `arena`, writing its output.
///
/// Combiners must emit keys equal (under the job's sort order) to the group
/// key they received — the same contract Hadoop imposes — so that runs stay
/// sorted; this is checked in debug builds.
fn combine_into<K: Writable + Send, V: Writable + Send>(
    arena: &RecordArena,
    cmp: &dyn RawComparator,
    combiner: &mut (dyn Reducer<Key = K, ValueIn = V, KeyOut = K, ValueOut = V> + Send),
    writer: &mut RunWriter,
    counters: &Counters,
) -> Result<()> {
    let metas = &arena.meta;
    let mut sink = CombineSink {
        writer,
        key_buf: Vec::new(),
        val_buf: Vec::new(),
        error: None,
    };
    let mut i = 0;
    while i < metas.len() {
        let group_key = arena.key(&metas[i]);
        let mut j = i + 1;
        while j < metas.len() && cmp.compare(arena.key(&metas[j]), group_key).is_eq() {
            j += 1;
        }
        let key = K::read_from(&mut crate::io::ByteReader::new(group_key))?;
        {
            let mut values = ValueIter::<V>::arena(&arena.data, &metas[i..j]);
            let mut ctx = ReduceContext::new(&mut sink, counters, Counter::CombineOutputRecords);
            combiner.reduce(key, &mut values, &mut ctx);
            values.finish()?;
        }
        counters.add(Counter::CombineInputRecords, (j - i) as u64);
        i = j;
    }
    if let Some(e) = sink.error {
        return Err(e);
    }
    Ok(())
}
