//! Aggregation strategies shared by NAÏVE's reducer and SUFFIX-σ's stack
//! reducer: occurrence counting (`cf`, the paper's default), document
//! frequency (`df`, §II-A), and per-year time series (§VI-B).
//!
//! SUFFIX-σ's reducer keeps one accumulator per stack entry and *merges*
//! child accumulators into parents on pop — exactly the paper's
//! `push(counts, pop(counts) + pop(counts))`, generalized so that "instead
//! of adding counts, we add time series observations".

use crate::timeseries::TimeSeries;
use mapreduce::{FxHashSet, Writable};

/// Which frequency a run computes: collection frequency (occurrences,
/// the paper's default) or document frequency (distinct documents — the
/// "support" notion of frequent sequence mining, §II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CountMode {
    /// Collection frequency `cf(s) = Σ_d f(s, d)`.
    #[default]
    Cf,
    /// Document frequency `df(s) = |{d : f(s, d) > 0}|`.
    Df,
}

/// How n-gram statistics are aggregated.
pub trait PrefixAggregator: Send + Sync + Clone + 'static {
    /// Per-occurrence value emitted by mappers.
    type In: Writable + Send + 'static;
    /// Accumulator kept per stack entry / reduce group.
    type Acc: Send;
    /// Final statistic attached to an emitted n-gram.
    type Stat: Writable + Clone + Send + 'static;

    /// The value a mapper attaches to one occurrence starting at
    /// document-global token offset `pos` of document `did` published in
    /// `year`.
    fn map_value(&self, did: u64, year: u16, pos: u32) -> Self::In;
    /// A fresh, empty accumulator.
    fn new_acc(&self) -> Self::Acc;
    /// Fold one mapped value into an accumulator.
    fn absorb(&self, acc: &mut Self::Acc, v: Self::In);
    /// Merge a popped child accumulator into its parent (prefix).
    fn merge(&self, parent: &mut Self::Acc, child: &Self::Acc);
    /// Final statistic, or `None` when the n-gram misses the τ threshold.
    fn finalize(&self, acc: &Self::Acc) -> Option<Self::Stat>;
    /// Scalar magnitude of a statistic (collection/document frequency);
    /// used by the closedness filter and by result normalization.
    fn magnitude(stat: &Self::Stat) -> u64;
}

/// Collection-frequency counting: the paper's primary statistic.
#[derive(Clone)]
pub struct CountAgg {
    /// Minimum collection frequency τ.
    pub tau: u64,
}

impl PrefixAggregator for CountAgg {
    type In = u64;
    type Acc = u64;
    type Stat = u64;

    #[inline]
    fn map_value(&self, _did: u64, _year: u16, _pos: u32) -> u64 {
        1
    }
    #[inline]
    fn new_acc(&self) -> u64 {
        0
    }
    #[inline]
    fn absorb(&self, acc: &mut u64, v: u64) {
        *acc += v;
    }
    #[inline]
    fn merge(&self, parent: &mut u64, child: &u64) {
        *parent += child;
    }
    #[inline]
    fn finalize(&self, acc: &u64) -> Option<u64> {
        (*acc >= self.tau).then_some(*acc)
    }
    #[inline]
    fn magnitude(stat: &u64) -> u64 {
        *stat
    }
}

/// Document-frequency counting: distinct documents containing the n-gram
/// (the notion of support in frequent sequence mining, §II-A).
#[derive(Clone)]
pub struct DfAgg {
    /// Minimum document frequency τ.
    pub tau: u64,
}

impl PrefixAggregator for DfAgg {
    type In = u64; // document id
    type Acc = FxHashSet<u64>;
    type Stat = u64;

    #[inline]
    fn map_value(&self, did: u64, _year: u16, _pos: u32) -> u64 {
        did
    }
    fn new_acc(&self) -> Self::Acc {
        FxHashSet::default()
    }
    fn absorb(&self, acc: &mut Self::Acc, did: u64) {
        acc.insert(did);
    }
    fn merge(&self, parent: &mut Self::Acc, child: &Self::Acc) {
        // A document containing r‖x necessarily contains r, so union is
        // the correct prefix aggregation.
        parent.extend(child.iter().copied());
    }
    fn finalize(&self, acc: &Self::Acc) -> Option<u64> {
        (acc.len() as u64 >= self.tau).then_some(acc.len() as u64)
    }
    #[inline]
    fn magnitude(stat: &u64) -> u64 {
        *stat
    }
}

/// Per-year occurrence time series (τ applies to the series total).
#[derive(Clone)]
pub struct TsAgg {
    /// Minimum total collection frequency τ.
    pub tau: u64,
}

impl PrefixAggregator for TsAgg {
    type In = (u64, u16); // (document id, year) — §VI-B
    type Acc = TimeSeries;
    type Stat = TimeSeries;

    #[inline]
    fn map_value(&self, did: u64, year: u16, _pos: u32) -> (u64, u16) {
        (did, year)
    }
    fn new_acc(&self) -> TimeSeries {
        TimeSeries::default()
    }
    fn absorb(&self, acc: &mut TimeSeries, (_did, year): (u64, u16)) {
        acc.add(year, 1);
    }
    fn merge(&self, parent: &mut TimeSeries, child: &TimeSeries) {
        parent.merge(child);
    }
    fn finalize(&self, acc: &TimeSeries) -> Option<TimeSeries> {
        (acc.total() >= self.tau).then(|| acc.clone())
    }
    #[inline]
    fn magnitude(stat: &TimeSeries) -> u64 {
        stat.total()
    }
}

/// Inverted-index aggregation (§VI-B, first bullet): for every frequent
/// n-gram, record *where* it occurs — a positional posting list. Each
/// suffix carries its start offset; a prefix n-gram inherits the start
/// offsets of every suffix extending it.
#[derive(Clone)]
pub struct IndexAgg {
    /// Minimum collection frequency τ.
    pub tau: u64,
}

impl PrefixAggregator for IndexAgg {
    type In = (u64, u32); // (document id, document-global start offset)
    type Acc = Vec<(u64, u32)>;
    type Stat = crate::postings::PostingList;

    #[inline]
    fn map_value(&self, did: u64, _year: u16, pos: u32) -> (u64, u32) {
        (did, pos)
    }
    fn new_acc(&self) -> Self::Acc {
        Vec::new()
    }
    fn absorb(&self, acc: &mut Self::Acc, v: (u64, u32)) {
        acc.push(v);
    }
    fn merge(&self, parent: &mut Self::Acc, child: &Self::Acc) {
        parent.extend_from_slice(child);
    }
    fn finalize(&self, acc: &Self::Acc) -> Option<Self::Stat> {
        if (acc.len() as u64) < self.tau {
            return None;
        }
        let mut occurrences = acc.clone();
        occurrences.sort_unstable();
        let mut list = crate::postings::PostingList::new();
        for (did, pos) in occurrences {
            match list.postings.last_mut() {
                Some(last) if last.did == did => last.positions.push(pos),
                _ => list.postings.push(crate::postings::Posting {
                    did,
                    positions: vec![pos],
                }),
            }
        }
        Some(list)
    }
    #[inline]
    fn magnitude(stat: &Self::Stat) -> u64 {
        stat.cf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_agg_builds_normalized_posting_lists() {
        let agg = IndexAgg { tau: 2 };
        let mut acc = agg.new_acc();
        agg.absorb(&mut acc, (7, 5));
        agg.absorb(&mut acc, (3, 1));
        let mut child = agg.new_acc();
        agg.absorb(&mut child, (7, 0));
        agg.merge(&mut acc, &child);
        let list = agg.finalize(&acc).expect("cf 3 ≥ τ 2");
        assert_eq!(list.df(), 2);
        assert_eq!(list.cf(), 3);
        // Sorted by did, positions sorted within.
        assert_eq!(list.postings[0].did, 3);
        assert_eq!(list.postings[1].did, 7);
        assert_eq!(list.postings[1].positions, vec![0, 5]);
        assert_eq!(IndexAgg::magnitude(&list), 3);
    }

    #[test]
    fn index_agg_thresholds_at_tau() {
        let agg = IndexAgg { tau: 5 };
        let mut acc = agg.new_acc();
        agg.absorb(&mut acc, (1, 1));
        assert!(agg.finalize(&acc).is_none());
    }

    #[test]
    fn count_agg_thresholds_at_tau() {
        let agg = CountAgg { tau: 3 };
        let mut acc = agg.new_acc();
        agg.absorb(&mut acc, 1);
        agg.absorb(&mut acc, 1);
        assert_eq!(agg.finalize(&acc), None);
        let mut child = agg.new_acc();
        agg.absorb(&mut child, 1);
        agg.merge(&mut acc, &child);
        assert_eq!(agg.finalize(&acc), Some(3));
    }

    #[test]
    fn df_agg_deduplicates_documents() {
        let agg = DfAgg { tau: 2 };
        let mut acc = agg.new_acc();
        agg.absorb(&mut acc, 7);
        agg.absorb(&mut acc, 7);
        agg.absorb(&mut acc, 7);
        assert_eq!(agg.finalize(&acc), None, "same doc thrice is df=1");
        let mut child = agg.new_acc();
        agg.absorb(&mut child, 9);
        agg.merge(&mut acc, &child);
        assert_eq!(agg.finalize(&acc), Some(2));
    }

    #[test]
    fn ts_agg_accumulates_years() {
        let agg = TsAgg { tau: 2 };
        let mut acc = agg.new_acc();
        agg.absorb(&mut acc, (1, 1999));
        agg.absorb(&mut acc, (2, 1999));
        agg.absorb(&mut acc, (3, 2004));
        let ts = agg.finalize(&acc).unwrap();
        assert_eq!(ts.get(1999), 2);
        assert_eq!(ts.get(2004), 1);
        assert_eq!(TsAgg::magnitude(&ts), 3);
    }
}
