//! A single-machine MapReduce runtime with Hadoop-faithful shuffle
//! semantics, built as the execution substrate for reproducing
//! *"Computing n-Gram Statistics in MapReduce"* (Berberich & Bedathur,
//! EDBT 2013).
//!
//! What "faithful" means here:
//!
//! * **Serialized shuffle.** Map output is serialized at `emit` time into a
//!   bounded sort buffer and sorted *as bytes* through a [`RawComparator`]
//!   over an offset array — no deserialization, no per-record allocation —
//!   matching Hadoop's `MapOutputBuffer` and the paper's §V advice on raw
//!   comparators.
//! * **Pluggable partitioner and sort order.** SUFFIX-σ needs both: suffixes
//!   are routed by their first term only and sorted in reverse lexicographic
//!   order (paper §IV).
//! * **Combiners on spill.** Local aggregation runs at every spill, and the
//!   counters keep Hadoop's semantics: `MAP_OUTPUT_RECORDS` /
//!   `MAP_OUTPUT_BYTES` count pre-combine emissions — these are the
//!   "# records" and "bytes transferred" measures of the paper's §VII.
//! * **Bounded resources.** Slots (worker threads) bound task parallelism;
//!   the sort buffer bounds map-task memory; spills optionally go to disk.
//! * **Multi-job sessions.** The APRIORI methods launch one job per n-gram
//!   length; [`Cluster`] aggregates wallclock and counters across a chain.
//! * **Streaming job boundaries.** Input splits are pulled from a
//!   [`RecordSource`] and reduce output is pushed into per-task sinks from
//!   a [`RecordSinkFactory`]; chained jobs hand records run-to-run through
//!   [`RunSinkFactory`] / [`RunRecordSource`] so nothing forces a
//!   `Vec<(K, V)>` at any job boundary ([`Job::run_streamed`]).
//!
//! # Example: word count
//!
//! ```
//! use mapreduce::*;
//!
//! struct Tokenize;
//! impl Mapper for Tokenize {
//!     type InKey = u64;            // document id
//!     type InValue = String;       // document text
//!     type OutKey = u64;           // term id (here: word length as a toy)
//!     type OutValue = u64;         // count
//!     fn map(&mut self, _k: &u64, text: &String, ctx: &mut MapContext<'_, u64, u64>) {
//!         for word in text.split_whitespace() {
//!             ctx.emit(&(word.len() as u64), &1);
//!         }
//!     }
//! }
//!
//! struct Sum;
//! impl Reducer for Sum {
//!     type Key = u64;
//!     type ValueIn = u64;
//!     type KeyOut = u64;
//!     type ValueOut = u64;
//!     fn reduce(&mut self, key: u64, values: &mut ValueIter<'_, u64>,
//!               ctx: &mut ReduceContext<'_, u64, u64>) {
//!         let total: u64 = values.sum();
//!         ctx.emit(key, total);
//!     }
//! }
//!
//! let cluster = Cluster::new(2);
//! let input = vec![(0u64, "a bb a ccc".to_string())];
//! let job = Job::<Tokenize, Sum>::new(JobConfig::named("wordcount"), || Tokenize, || Sum);
//! let result = job.run(&cluster, input).unwrap();
//! let mut counts = result.into_records();
//! counts.sort();
//! assert_eq!(counts, vec![(1, 2), (2, 1), (3, 1)]);
//! ```

#![warn(missing_docs)]

mod buffer;
mod checkpoint;
mod cluster;
mod comparator;
mod counters;
mod crc;
mod error;
mod fault;
mod hash;
mod io;
pub(crate) mod job;
pub mod json;
pub mod logging;
mod merge;
mod partition;
mod profile;
mod run;
mod sink;
mod source;
mod task;
mod trace;
mod values;

pub use checkpoint::CheckpointSpec;
pub use cluster::{Cluster, DistCache, JobLogEntry};
pub use comparator::{BytewiseComparator, RawComparator, TypedComparator, VarintSeqComparator};
pub use counters::{Counter, CounterSnapshot, Counters};
pub use crc::{crc32, Crc32};
pub use error::{MrError, Result};
pub use fault::FaultPlan;
pub use hash::{fx_hash, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use io::{
    from_bytes, read_vu32_seq, read_vu64_at, read_vu64_seq, to_bytes, write_vu32, write_vu64,
    ByteReader, Writable,
};
pub use job::{
    simulated_makespan, Job, JobConfig, JobResult, JobRun, JobStats, DEFAULT_SORT_BUFFER_BYTES,
};
pub use merge::MergeStream;
pub use partition::{FnPartitioner, HashPartition, Partitioner};
pub use profile::{JobProfile, PhaseProfile, TaskProfile};
pub use run::{
    decode_block, BlockCodec, BlockEncoder, DecodeState, FrontCodedCodec, PlainCodec,
    PostingDeltaCodec, RawBlock, Run, RunCodec, RunInput, RunReader, RunWriter, TempDir,
    RUN_BLOCK_BYTES,
};
pub use sink::{
    CountingSink, CountingSinkFactory, RecordSinkFactory, RunSink, RunSinkFactory, VecSinkFactory,
    WriterSink, WriterSinkFactory,
};
pub use source::{
    for_each_run_record, InputStats, RecordSource, RecordStream, RunRecordSource, RunStream,
    SliceSource, SliceStream, VecSource, VecStream,
};
pub use task::{BoxedCombiner, MapContext, Mapper, RecordSink, ReduceContext, Reducer, VecSink};
pub use trace::{JobSpan, JobTrace, TaskSpan, TraceSink};
pub use values::ValueIter;
