//! The map-side sort buffer: a record arena per partition, spilled as sorted
//! runs when the configured budget is exceeded.
//!
//! This mirrors Hadoop's `MapOutputBuffer`: records are serialized once at
//! `emit`, sorted *as bytes* through a [`RawComparator`] over an offset
//! array (no deserialization, no per-record allocation), optionally fed
//! through a combiner at each spill, and written out as runs.

use crate::comparator::RawComparator;
use crate::counters::{Counter, Counters};
use crate::error::Result;
use crate::io::Writable;
use crate::run::{Run, RunCodec, RunWriter, TempDir};
use crate::task::{BoxedCombiner, RecordSink, ReduceContext, Reducer};
use crate::values::ValueIter;
use std::sync::Arc;

/// Offsets of one record inside a [`RecordArena`], plus the cached
/// order-consistent key digest ([`RawComparator::sort_prefix`]) filled in
/// at sort time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RecMeta {
    pub key_start: u32,
    pub key_end: u32,
    pub val_end: u32,
    /// `sort_prefix` digest of the key; `0` until [`RecordArena::sort`].
    pub prefix: u64,
}

/// Contiguous byte arena holding serialized records plus an offset array.
#[derive(Default)]
pub(crate) struct RecordArena {
    pub data: Vec<u8>,
    pub meta: Vec<RecMeta>,
}

impl RecordArena {
    /// Serialize one record into the arena; returns (key_len, val_len).
    fn append<K: Writable, V: Writable>(&mut self, k: &K, v: &V) -> (usize, usize) {
        let key_start = self.data.len();
        k.write_to(&mut self.data);
        let key_end = self.data.len();
        v.write_to(&mut self.data);
        let val_end = self.data.len();
        debug_assert!(val_end <= u32::MAX as usize, "arena exceeds 4 GiB");
        self.meta.push(RecMeta {
            key_start: key_start as u32,
            key_end: key_end as u32,
            val_end: val_end as u32,
            prefix: 0,
        });
        (key_end - key_start, val_end - key_end)
    }

    #[inline]
    pub(crate) fn key(&self, m: &RecMeta) -> &[u8] {
        &self.data[m.key_start as usize..m.key_end as usize]
    }

    #[inline]
    pub(crate) fn val(&self, m: &RecMeta) -> &[u8] {
        &self.data[m.key_end as usize..m.val_end as usize]
    }

    /// Sort the offset array by key. With `prefix_sort`, each record's
    /// [`RawComparator::sort_prefix`] digest is computed once and cached in
    /// its [`RecMeta`], and comparisons resolve on an inline `u64` compare,
    /// falling through to the dyn-dispatch decoding comparator only on
    /// digest ties; without it, every comparison goes through the
    /// comparator (the pre-digest behavior, kept as the bench baseline).
    fn sort(&mut self, cmp: &dyn RawComparator, prefix_sort: bool) {
        let data = &self.data;
        if prefix_sort {
            for m in &mut self.meta {
                m.prefix = cmp.sort_prefix(&data[m.key_start as usize..m.key_end as usize]);
            }
            self.meta.sort_unstable_by(|a, b| {
                a.prefix.cmp(&b.prefix).then_with(|| {
                    cmp.compare(
                        &data[a.key_start as usize..a.key_end as usize],
                        &data[b.key_start as usize..b.key_end as usize],
                    )
                })
            });
        } else {
            self.meta.sort_unstable_by(|a, b| {
                cmp.compare(
                    &data[a.key_start as usize..a.key_end as usize],
                    &data[b.key_start as usize..b.key_end as usize],
                )
            });
        }
    }

    fn clear(&mut self) {
        self.data.clear();
        self.meta.clear();
    }

    fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    fn bytes(&self) -> usize {
        self.data.len() + self.meta.len() * std::mem::size_of::<RecMeta>()
    }
}

/// Factory producing a fresh combiner instance for each spill.
pub type CombinerFactory<K, V> = Arc<dyn Fn() -> BoxedCombiner<K, V> + Send + Sync>;

/// Shuffle-relevant knobs of one map task's collector, extracted from the
/// job configuration.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CollectorConfig {
    pub sort_buffer_bytes: usize,
    pub spill_to_disk: bool,
    /// Codec spill runs are encoded with.
    pub run_codec: RunCodec,
    /// Cache `sort_prefix` digests and compare them inline before falling
    /// back to the raw comparator.
    pub prefix_sort: bool,
}

/// Per-map-task output collector.
pub(crate) struct MapOutputCollector<K: Writable + Send, V: Writable + Send> {
    arenas: Vec<RecordArena>,
    runs: Vec<Vec<Run>>,
    config: CollectorConfig,
    temp: Option<Arc<TempDir>>,
    cmp: Arc<dyn RawComparator>,
    combiner_f: Option<CombinerFactory<K, V>>,
    counters: Arc<Counters>,
}

impl<K: Writable + Send, V: Writable + Send> MapOutputCollector<K, V> {
    pub(crate) fn new(
        num_partitions: usize,
        config: CollectorConfig,
        temp: Option<Arc<TempDir>>,
        cmp: Arc<dyn RawComparator>,
        combiner_f: Option<CombinerFactory<K, V>>,
        counters: Arc<Counters>,
    ) -> Self {
        MapOutputCollector {
            arenas: (0..num_partitions)
                .map(|_| RecordArena::default())
                .collect(),
            runs: (0..num_partitions).map(|_| Vec::new()).collect(),
            config,
            temp,
            cmp,
            combiner_f,
            counters,
        }
    }

    /// Serialize and collect one record for `partition`.
    pub(crate) fn emit(&mut self, partition: usize, k: &K, v: &V) -> Result<()> {
        let (klen, vlen) = self.arenas[partition].append(k, v);
        self.counters.inc(Counter::MapOutputRecords);
        self.counters
            .add(Counter::MapOutputBytes, (klen + vlen) as u64);
        if self.buffered_bytes() > self.config.sort_buffer_bytes {
            self.spill()?;
        }
        Ok(())
    }

    fn buffered_bytes(&self) -> usize {
        self.arenas.iter().map(RecordArena::bytes).sum()
    }

    /// Sort, combine and write out every non-empty arena as one run each.
    fn spill(&mut self) -> Result<()> {
        self.counters.inc(Counter::Spills);
        for p in 0..self.arenas.len() {
            if self.arenas[p].is_empty() {
                continue;
            }
            let mut arena = std::mem::take(&mut self.arenas[p]);
            let sort_started = std::time::Instant::now();
            arena.sort(self.cmp.as_ref(), self.config.prefix_sort);
            self.counters.add(
                Counter::MapSortNanos,
                sort_started.elapsed().as_nanos() as u64,
            );
            let mut writer = self.new_writer()?;
            match &self.combiner_f {
                Some(f) => {
                    let mut combiner = f();
                    combine_into(
                        &arena,
                        self.cmp.as_ref(),
                        combiner.as_mut(),
                        &mut writer,
                        &self.counters,
                    )?;
                }
                None => {
                    for m in &arena.meta {
                        writer.write_record(arena.key(m), arena.val(m))?;
                    }
                }
            }
            let run = writer.finish()?;
            self.counters.add(Counter::ShuffleBytes, run.bytes);
            self.counters.add(Counter::RawRunBytes, run.raw_bytes);
            self.counters.add(Counter::EncodedRunBytes, run.bytes);
            if !run.is_empty() {
                self.runs[p].push(run);
            }
            arena.clear();
            self.arenas[p] = arena; // keep the allocation for reuse
        }
        Ok(())
    }

    fn new_writer(&self) -> Result<RunWriter> {
        if self.config.spill_to_disk {
            let temp = self
                .temp
                .as_ref()
                .expect("spill_to_disk requires a temp dir");
            RunWriter::file_codec(temp, self.config.run_codec)
        } else {
            Ok(RunWriter::mem_codec(self.config.run_codec))
        }
    }

    /// Final spill; returns the per-partition runs of this map task.
    pub(crate) fn finish(mut self) -> Result<Vec<Vec<Run>>> {
        if self.arenas.iter().any(|a| !a.is_empty()) {
            self.spill()?;
        }
        Ok(std::mem::take(&mut self.runs))
    }
}

/// Sink that serializes combiner output straight into a run writer.
struct CombineSink<'a> {
    writer: &'a mut RunWriter,
    key_buf: Vec<u8>,
    val_buf: Vec<u8>,
    error: Option<crate::error::MrError>,
}

impl<K: Writable, V: Writable> RecordSink<K, V> for CombineSink<'_> {
    fn push(&mut self, k: K, v: V) {
        self.key_buf.clear();
        self.val_buf.clear();
        k.write_to(&mut self.key_buf);
        v.write_to(&mut self.val_buf);
        if let Err(e) = self.writer.write_record(&self.key_buf, &self.val_buf) {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

/// Run `combiner` over the sorted groups of `arena`, writing its output.
///
/// Combiners must emit keys equal (under the job's sort order) to the group
/// key they received — the same contract Hadoop imposes — so that runs stay
/// sorted; this is checked in debug builds.
fn combine_into<K: Writable + Send, V: Writable + Send>(
    arena: &RecordArena,
    cmp: &dyn RawComparator,
    combiner: &mut (dyn Reducer<Key = K, ValueIn = V, KeyOut = K, ValueOut = V> + Send),
    writer: &mut RunWriter,
    counters: &Counters,
) -> Result<()> {
    let metas = &arena.meta;
    let mut sink = CombineSink {
        writer,
        key_buf: Vec::new(),
        val_buf: Vec::new(),
        error: None,
    };
    let mut i = 0;
    while i < metas.len() {
        let group_key = arena.key(&metas[i]);
        let mut j = i + 1;
        while j < metas.len() && cmp.compare(arena.key(&metas[j]), group_key).is_eq() {
            j += 1;
        }
        let key = K::read_from(&mut crate::io::ByteReader::new(group_key))?;
        {
            let mut values = ValueIter::<V>::arena(&arena.data, &metas[i..j]);
            let mut ctx = ReduceContext::new(&mut sink, counters, Counter::CombineOutputRecords);
            combiner.reduce(key, &mut values, &mut ctx);
            values.finish()?;
        }
        counters.add(Counter::CombineInputRecords, (j - i) as u64);
        i = j;
    }
    if let Some(e) = sink.error {
        return Err(e);
    }
    Ok(())
}
