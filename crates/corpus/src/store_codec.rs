//! The store's dependency-free byte codec: greedy LZ over a block's bytes
//! followed by an order-0 canonical Huffman pass over the LZ op stream.
//!
//! The LZ stage captures verbatim repetition (the generator's phrase
//! library, near-duplicate documents); the Huffman stage captures the
//! skew varint coding leaves on the table — term ids are Zipf-distributed,
//! so the byte histogram of a block is far from uniform even when no
//! 4-byte window ever repeats. Both [`crate::store::StoreCodec::Lz`] and
//! the residual of `StoreCodec::Rank` go through [`pack`] / [`unpack`].
//!
//! ```text
//! packed := [op-bytes: varint] huff
//! huff   := [#syms: varint]([sym: u8][code-len: u8])*  bitstream (MSB first)
//! ops    := op*
//! op     := [lit-len<<1: varint]     lit-len raw bytes     (literal run)
//!         | [(len-4)<<1|1: varint] [offset: varint]        (match, len ≥ 4)
//! ```
//!
//! Decoding is fully bounds-checked and never allocates from an untrusted
//! length: every size is clamped against the caller-supplied decoded size,
//! which the store's footer carries per block.

use crate::wire::read_u64;
use mapreduce::write_vu64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("store codec: {msg}"))
}

// ---------------------------------------------------------------------------
// LZ stage
// ---------------------------------------------------------------------------

/// Shortest back-reference worth emitting: a match op costs up to six
/// bytes (one for the length, up to five for an in-block offset).
const MIN_MATCH: usize = 4;

/// Hash-table size exponent for the greedy matcher (head-only chains).
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

fn emit_literals(out: &mut Vec<u8>, lits: &[u8]) {
    if !lits.is_empty() {
        write_vu64(out, (lits.len() as u64) << 1);
        out.extend_from_slice(lits);
    }
}

/// Greedy LZ with a head-only hash table: at each position, probe the most
/// recent occurrence of the current 4-byte window, extend forward, and jump
/// past the match. Positions inside a match are not indexed — the classic
/// fast-compressor trade of a little ratio for linear-time encoding.
pub(crate) fn lz_compress(src: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= src.len() {
        let h = hash4(&src[i..]);
        let cand = table[h] as usize;
        table[h] = i as u32;
        if cand != u32::MAX as usize && src[cand..cand + MIN_MATCH] == src[i..i + MIN_MATCH] {
            let mut len = MIN_MATCH;
            while i + len < src.len() && src[cand + len] == src[i + len] {
                len += 1;
            }
            emit_literals(out, &src[lit_start..i]);
            write_vu64(out, (((len - MIN_MATCH) as u64) << 1) | 1);
            write_vu64(out, (i - cand) as u64);
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    emit_literals(out, &src[lit_start..]);
}

/// Decode an LZ op stream into exactly `raw_len` bytes.
pub(crate) fn lz_decompress(src: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let pos = &mut 0usize;
    while out.len() < raw_len {
        let op = read_u64(src, pos)?;
        if op & 1 == 0 {
            let lit = op >> 1;
            if lit == 0 {
                return Err(bad("empty literal run"));
            }
            if out.len() as u64 + lit > raw_len as u64 {
                return Err(bad("literal run overruns the block"));
            }
            let lit = lit as usize;
            let end = pos
                .checked_add(lit)
                .filter(|&e| e <= src.len())
                .ok_or_else(|| bad("truncated literal run"))?;
            out.extend_from_slice(&src[*pos..end]);
            *pos = end;
        } else {
            let len = (op >> 1) + MIN_MATCH as u64;
            if out.len() as u64 + len > raw_len as u64 {
                return Err(bad("match overruns the block"));
            }
            let off = read_u64(src, pos)?;
            if off == 0 || off > out.len() as u64 {
                return Err(bad("match offset out of bounds"));
            }
            let start = out.len() - off as usize;
            let len = len as usize;
            if off as usize >= len {
                out.extend_from_within(start..start + len);
            } else {
                // Byte-wise so overlapping matches (off < len) replicate,
                // the LZ idiom for runs.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if *pos != src.len() {
        return Err(bad("trailing bytes after op stream"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Huffman stage
// ---------------------------------------------------------------------------

/// Depth cap for sanity checking decoded tables. With 256 symbols and
/// block-sized counts an optimal code cannot get near this (depth d needs
/// Fibonacci-like counts summing past F(d), and F(48) ≫ any block size).
const MAX_CODE_LEN: usize = 48;

/// Optimal code lengths per byte value (0 for unused symbols).
fn huff_code_lengths(freq: &[u64; 256]) -> io::Result<[u8; 256]> {
    let mut lens = [0u8; 256];
    let used: Vec<usize> = (0..256).filter(|&s| freq[s] > 0).collect();
    match used.len() {
        0 => return Ok(lens),
        1 => {
            lens[used[0]] = 1;
            return Ok(lens);
        }
        _ => {}
    }
    // Heap Huffman over (count, node-id); ids 0..256 are leaves, internal
    // nodes count up from 256. The id tiebreak makes the tree — and with
    // it the canonical table — deterministic.
    let mut parent = vec![usize::MAX; 2 * 256];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        used.iter().map(|&s| Reverse((freq[s], s))).collect();
    let mut next_node = 256usize;
    while heap.len() > 1 {
        let Reverse((f1, n1)) = heap.pop().expect("len > 1");
        let Reverse((f2, n2)) = heap.pop().expect("len > 1");
        parent[n1] = next_node;
        parent[n2] = next_node;
        heap.push(Reverse((f1 + f2, next_node)));
        next_node += 1;
    }
    for &s in &used {
        let mut depth = 0usize;
        let mut n = s;
        while parent[n] != usize::MAX {
            depth += 1;
            n = parent[n];
        }
        if depth > MAX_CODE_LEN {
            return Err(bad("huffman depth overflow"));
        }
        lens[s] = depth as u8;
    }
    Ok(lens)
}

/// Canonical code per symbol, derived from lengths alone — the decoder
/// rebuilds the identical table from the header's (symbol, length) pairs.
fn canonical_codes(lens: &[u8; 256]) -> [u64; 256] {
    let mut syms: Vec<usize> = (0..256).filter(|&s| lens[s] > 0).collect();
    syms.sort_by_key(|&s| (lens[s], s));
    let mut codes = [0u64; 256];
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &s in &syms {
        code <<= lens[s] - prev_len;
        prev_len = lens[s];
        codes[s] = code;
        code += 1;
    }
    codes
}

/// Huffman-code `src` into `out`: `[#syms]([sym][len])*` then the MSB-first
/// bitstream. The byte count of the stream is implied by the symbol count
/// the caller frames alongside.
pub(crate) fn huff_compress(src: &[u8], out: &mut Vec<u8>) -> io::Result<()> {
    let mut freq = [0u64; 256];
    for &b in src {
        freq[b as usize] += 1;
    }
    let lens = huff_code_lengths(&freq)?;
    let codes = canonical_codes(&lens);
    let used: Vec<usize> = (0..256).filter(|&s| lens[s] > 0).collect();
    write_vu64(out, used.len() as u64);
    for &s in &used {
        out.push(s as u8);
        out.push(lens[s]);
    }
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &b in src {
        let s = b as usize;
        acc = (acc << lens[s]) | codes[s];
        nbits += u32::from(lens[s]);
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        out.push((acc << (8 - nbits)) as u8);
    }
    Ok(())
}

/// Decode exactly `out_len` symbols from a [`huff_compress`] stream that
/// spans all of `buf`; rejects malformed tables, truncation, and trailing
/// garbage.
pub(crate) fn huff_decompress(buf: &[u8], out_len: usize) -> io::Result<Vec<u8>> {
    let pos = &mut 0usize;
    let n_used = read_u64(buf, pos)? as usize;
    if n_used > 256 {
        return Err(bad("oversized huffman table"));
    }
    if n_used == 0 {
        if out_len != 0 {
            return Err(bad("empty huffman table for non-empty stream"));
        }
        if *pos != buf.len() {
            return Err(bad("trailing bytes after huffman table"));
        }
        return Ok(Vec::new());
    }
    let mut lens = [0u8; 256];
    let mut prev_sym: i32 = -1;
    for _ in 0..n_used {
        let end = pos
            .checked_add(2)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| bad("truncated huffman table"))?;
        let (sym, len) = (buf[*pos], buf[*pos + 1]);
        *pos = end;
        if i32::from(sym) <= prev_sym {
            return Err(bad("huffman table symbols out of order"));
        }
        prev_sym = i32::from(sym);
        if len == 0 || usize::from(len) > MAX_CODE_LEN {
            return Err(bad("huffman code length out of range"));
        }
        lens[sym as usize] = len;
    }
    // Canonical decode tables: first code and first symbol index per
    // length, with a Kraft check so no length class overflows its prefix
    // space (which would make decoding ambiguous or non-terminating).
    let mut syms: Vec<usize> = (0..256).filter(|&s| lens[s] > 0).collect();
    syms.sort_by_key(|&s| (lens[s], s));
    let mut count = [0u64; MAX_CODE_LEN + 1];
    for &s in &syms {
        count[usize::from(lens[s])] += 1;
    }
    let mut first_code = [0u64; MAX_CODE_LEN + 1];
    let mut first_idx = [0usize; MAX_CODE_LEN + 1];
    let mut code = 0u64;
    let mut idx = 0usize;
    for len in 1..=MAX_CODE_LEN {
        first_code[len] = code;
        first_idx[len] = idx;
        code += count[len];
        idx += count[len] as usize;
        if code > 1u64 << len {
            return Err(bad("invalid huffman code lengths"));
        }
        code <<= 1;
    }

    // One-peek lookup table for codes of ≤ LOOKUP_BITS bits: every index
    // whose top bits spell a code maps to `sym << 8 | code-len`. Entry 0
    // (code length 0 is never valid) escapes to the bit-by-bit walk —
    // longer codes, corrupt codes, and end-of-stream truncation.
    let mut lut = vec![0u16; 1 << LOOKUP_BITS];
    for (i, &s) in syms.iter().enumerate() {
        let len = usize::from(lens[s]);
        if len > LOOKUP_BITS {
            continue;
        }
        let code = first_code[len] + (i - first_idx[len]) as u64;
        let lo = (code as usize) << (LOOKUP_BITS - len);
        let hi = lo + (1 << (LOOKUP_BITS - len));
        for entry in &mut lut[lo..hi] {
            *entry = ((s as u16) << 8) | len as u16;
        }
    }

    // Fast path: while a full 8-byte load fits, decode several symbols
    // per loaded window with no per-symbol refill or bounds checks — a
    // window holds ≥ 57 valid stream bits, so peeks at offsets ≤ 44 stay
    // inside it, and every consumed bit is a real stream bit. The stream
    // tail and codes longer than the table fall back to a checked
    // bit-by-bit walk.
    let bits = &buf[*pos..];
    let total_bits = bits.len() * 8;
    let mut out = Vec::with_capacity(out_len);
    let mut bit_pos = 0usize;
    while out.len() < out_len {
        let byte = bit_pos >> 3;
        if byte + 8 <= bits.len() {
            let chunk: [u8; 8] = bits[byte..byte + 8].try_into().expect("8-byte slice");
            let window = u64::from_be_bytes(chunk) << (bit_pos & 7);
            let mut used = 0usize;
            while used <= 44 && out.len() < out_len {
                let entry = lut[((window << used) >> (64 - LOOKUP_BITS)) as usize];
                if entry == 0 {
                    break;
                }
                used += usize::from(entry & 0xff);
                out.push((entry >> 8) as u8);
            }
            bit_pos += used;
            if used > 0 {
                continue;
            }
        }
        let mut code = 0u64;
        let mut len = 0usize;
        loop {
            if bit_pos >= total_bits {
                return Err(bad("truncated huffman stream"));
            }
            code = (code << 1) | u64::from((bits[bit_pos >> 3] >> (7 - (bit_pos & 7))) & 1);
            bit_pos += 1;
            len += 1;
            if len > MAX_CODE_LEN {
                return Err(bad("invalid huffman code"));
            }
            if code >= first_code[len] && code - first_code[len] < count[len] {
                out.push(syms[first_idx[len] + (code - first_code[len]) as usize] as u8);
                break;
            }
        }
    }
    if bit_pos.div_ceil(8) != bits.len() {
        return Err(bad("trailing bytes in huffman stream"));
    }
    Ok(out)
}

/// Width of the one-peek decode table; codes longer than this (vanishingly
/// rare under block-sized skewed histograms) take the bit-by-bit path.
const LOOKUP_BITS: usize = 12;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Compress `src` into `out`: `[op-bytes: varint]` followed by the
/// Huffman-coded LZ op stream.
pub(crate) fn pack(src: &[u8], out: &mut Vec<u8>) -> io::Result<()> {
    let mut ops = Vec::with_capacity(src.len() / 2 + 16);
    lz_compress(src, &mut ops);
    write_vu64(out, ops.len() as u64);
    huff_compress(&ops, out)
}

/// Decompress a [`pack`]ed buffer back into exactly `raw_len` bytes,
/// consuming all of `buf`.
pub(crate) fn unpack(buf: &[u8], raw_len: usize) -> io::Result<Vec<u8>> {
    let pos = &mut 0usize;
    let ops_len = read_u64(buf, pos)?;
    // An op stream is never much larger than its decoded form (a 4-byte
    // match costs at most 6 op bytes); 2× + slack bounds any allocation
    // a corrupt length could request.
    if ops_len > 2 * raw_len as u64 + 1024 {
        return Err(bad("implausible op stream size"));
    }
    let ops = huff_decompress(&buf[*pos..], ops_len as usize)?;
    lz_decompress(&ops, raw_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_bytes(n: usize, vocabish: bool) -> Vec<u8> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let v = next();
                if vocabish {
                    // Skewed small values, like varint-coded Zipf ids.
                    ((v % 97) * (v % 3)) as u8 & 0x7f
                } else {
                    v as u8
                }
            })
            .collect()
    }

    #[test]
    fn lz_round_trips_and_compresses_repetition() {
        let phrase = xorshift_bytes(300, true);
        let mut src = Vec::new();
        for _ in 0..50 {
            src.extend_from_slice(&phrase);
        }
        let mut ops = Vec::new();
        lz_compress(&src, &mut ops);
        assert!(
            ops.len() * 4 < src.len(),
            "repeated phrases must compress well, got {} of {}",
            ops.len(),
            src.len()
        );
        assert_eq!(lz_decompress(&ops, src.len()).unwrap(), src);
    }

    #[test]
    fn lz_round_trips_incompressible_and_tiny_inputs() {
        for src in [
            Vec::new(),
            vec![7u8],
            vec![1, 2, 3],
            xorshift_bytes(10_000, false),
        ] {
            let mut ops = Vec::new();
            lz_compress(&src, &mut ops);
            assert_eq!(lz_decompress(&ops, src.len()).unwrap(), src, "{src:?}");
        }
    }

    #[test]
    fn lz_handles_overlapping_matches() {
        // A run longer than its period forces off < len replication.
        let src = vec![5u8; 4096];
        let mut ops = Vec::new();
        lz_compress(&src, &mut ops);
        assert!(ops.len() < 32);
        assert_eq!(lz_decompress(&ops, src.len()).unwrap(), src);
    }

    #[test]
    fn lz_rejects_corrupt_streams() {
        let src = xorshift_bytes(500, true);
        let mut ops = Vec::new();
        lz_compress(&src, &mut ops);
        // Wrong target size.
        assert!(lz_decompress(&ops, src.len() + 1).is_err());
        assert!(lz_decompress(&ops, src.len().saturating_sub(1)).is_err());
        // Truncation anywhere fails.
        assert!(lz_decompress(&ops[..ops.len() / 2], src.len()).is_err());
        // A match op with an offset beyond the produced output.
        let mut evil = Vec::new();
        write_vu64(&mut evil, 1 << 1); // literal run of 1
        evil.push(9);
        write_vu64(&mut evil, 1); // match, len 4
        write_vu64(&mut evil, 40); // offset 40 > 1 byte produced
        assert!(lz_decompress(&evil, 5).is_err());
    }

    #[test]
    fn huffman_round_trips_skewed_and_uniform_bytes() {
        for src in [
            Vec::new(),
            vec![42u8; 1000],
            xorshift_bytes(20_000, true),
            xorshift_bytes(20_000, false),
            (0..=255u8).collect::<Vec<u8>>(),
        ] {
            let mut enc = Vec::new();
            huff_compress(&src, &mut enc).unwrap();
            assert_eq!(huff_decompress(&enc, src.len()).unwrap(), src);
        }
    }

    #[test]
    fn huffman_compresses_skewed_bytes() {
        let src = xorshift_bytes(50_000, true);
        let mut enc = Vec::new();
        huff_compress(&src, &mut enc).unwrap();
        assert!(
            enc.len() * 10 < src.len() * 9,
            "skewed bytes must shrink ≥ 10%: {} of {}",
            enc.len(),
            src.len()
        );
    }

    #[test]
    fn huffman_rejects_corrupt_tables_and_streams() {
        let src = xorshift_bytes(1000, true);
        let mut enc = Vec::new();
        huff_compress(&src, &mut enc).unwrap();
        // Truncations die.
        for cut in [1, enc.len() / 2, enc.len() - 1] {
            assert!(huff_decompress(&enc[..cut], src.len()).is_err(), "{cut}");
        }
        // Over-claimed symbol count.
        let mut evil = Vec::new();
        write_vu64(&mut evil, 300);
        assert!(huff_decompress(&evil, 10).is_err());
        // Kraft violation: two symbols both with code length 1 plus a third.
        let mut evil = Vec::new();
        write_vu64(&mut evil, 3);
        for s in 0..3u8 {
            evil.push(s);
            evil.push(1);
        }
        evil.push(0);
        assert!(huff_decompress(&evil, 1).is_err());
    }

    #[test]
    fn pack_round_trips_and_rejects_bad_frames() {
        let phrase = xorshift_bytes(200, true);
        let mut src = xorshift_bytes(3000, true);
        for _ in 0..20 {
            src.extend_from_slice(&phrase);
        }
        let mut packed = Vec::new();
        pack(&src, &mut packed).unwrap();
        assert!(packed.len() < src.len());
        assert_eq!(unpack(&packed, src.len()).unwrap(), src);
        assert!(unpack(&packed, src.len() + 3).is_err());
        assert!(unpack(&packed[..packed.len() - 2], src.len()).is_err());
        // Implausible op-stream size is rejected before any allocation.
        let mut evil = Vec::new();
        write_vu64(&mut evil, u64::MAX / 2);
        assert!(unpack(&evil, 100).is_err());
    }
}
