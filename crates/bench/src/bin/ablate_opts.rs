//! §V ablation — the implementation techniques the paper calls out,
//! each toggled in isolation:
//!
//! * document splits at infrequent terms ("all methods profit — for large
//!   values of σ in particular");
//! * NAÏVE's combiner (local pre-aggregation);
//! * raw comparator vs deserializing comparator for SUFFIX-σ's sort.

use mapreduce::{Cluster, Counter, Job, JobConfig, RawComparator};
use ngrams::{
    prepare_input, reverse_lex, Computation, CountAgg, EmitFilter, FirstTermPartitioner, Gram,
    Method, NGramParams, ReverseLexComparator, StackReducer, SuffixMapper,
};

/// Deserializing twin of [`ReverseLexComparator`] — what SUFFIX-σ's sort
/// would cost without the §V raw-comparator optimization.
struct DecodedReverseLex;

impl RawComparator for DecodedReverseLex {
    fn compare(&self, a: &[u8], b: &[u8]) -> std::cmp::Ordering {
        let ga: Gram = mapreduce::from_bytes(a).expect("valid gram");
        let gb: Gram = mapreduce::from_bytes(b).expect("valid gram");
        reverse_lex(&ga, &gb)
    }
}

fn suffix_job_wall(
    cluster: &Cluster,
    input: Vec<(u64, ngrams::InputSeq)>,
    tau: u64,
    sigma: usize,
    raw: bool,
) -> std::time::Duration {
    let job = Job::<SuffixMapper<CountAgg>, StackReducer<CountAgg>>::new(
        JobConfig::named(if raw { "raw-cmp" } else { "decoded-cmp" }),
        move || SuffixMapper {
            sigma,
            agg: CountAgg { tau },
        },
        move || StackReducer::new(CountAgg { tau }, EmitFilter::All),
    )
    .partitioner(FirstTermPartitioner);
    let result = if raw {
        job.sort_comparator(ReverseLexComparator)
            .run(cluster, input)
    } else {
        job.sort_comparator(DecodedReverseLex).run(cluster, input)
    }
    .expect("job failed");
    result.elapsed
}

fn main() {
    let scale = bench::scale_from_env();
    let cluster = bench::cluster_from_env();
    let (nyt, _) = bench::corpora(scale);
    let coll = &nyt;
    println!("corpus: {} ({} tokens)", coll.name, coll.term_occurrences());

    // --- Document splits (§V), per method, large σ. ---
    let mut rows = Vec::new();
    for &method in &Method::ALL {
        let tau = 10;
        let on = Computation::new(
            method,
            &NGramParams {
                split_docs: true,
                ..NGramParams::new(tau, 50)
            },
        )
        .input(coll)
        .run(&cluster)
        .unwrap();
        let off = Computation::new(
            method,
            &NGramParams {
                split_docs: false,
                ..NGramParams::new(tau, 50)
            },
        )
        .input(coll)
        .run(&cluster)
        .unwrap();
        assert_eq!(on.grams, off.grams);
        rows.push(vec![
            method.name().to_string(),
            bench::fmt_duration(off.elapsed),
            bench::fmt_duration(on.elapsed),
            bench::fmt_count(off.counters.get(Counter::MapOutputRecords)),
            bench::fmt_count(on.counters.get(Counter::MapOutputRecords)),
            format!(
                "{:.2}x",
                off.counters.get(Counter::MapOutputRecords) as f64
                    / on.counters.get(Counter::MapOutputRecords).max(1) as f64
            ),
        ]);
    }
    bench::print_table(
        "§V document splits (τ=10, σ=50): off vs on",
        &[
            "method",
            "wall off",
            "wall on",
            "records off",
            "records on",
            "record ratio",
        ],
        &rows,
    );

    // --- NAÏVE combiner. ---
    let mut rows = Vec::new();
    for combiner in [false, true] {
        let result = Computation::new(
            Method::Naive,
            &NGramParams {
                combiner,
                ..NGramParams::new(5, 5)
            },
        )
        .input(coll)
        .run(&cluster)
        .unwrap();
        rows.push(vec![
            if combiner {
                "with combiner"
            } else {
                "no combiner"
            }
            .to_string(),
            bench::fmt_duration(result.elapsed),
            bench::fmt_count(result.counters.get(Counter::MapOutputRecords)),
            bench::fmt_count(result.counters.get(Counter::ReduceInputRecords)),
            bench::fmt_bytes(result.counters.get(Counter::ShuffleBytes)),
        ]);
    }
    bench::print_table(
        "§III-A NAIVE combiner (τ=5, σ=5)",
        &[
            "config",
            "wall",
            "map records",
            "reduce records",
            "shuffled",
        ],
        &rows,
    );

    // --- Raw vs deserializing comparator for SUFFIX-σ. ---
    let input = prepare_input(coll, 5, true);
    let mut rows = Vec::new();
    for raw in [true, false] {
        let wall = suffix_job_wall(&cluster, input.clone(), 5, 5, raw);
        rows.push(vec![
            if raw {
                "raw comparator (varint-decoding)"
            } else {
                "deserializing comparator"
            }
            .to_string(),
            bench::fmt_duration(wall),
        ]);
    }
    bench::print_table(
        "§V raw comparator for SUFFIX-σ's sort (τ=5, σ=5)",
        &["comparator", "wall"],
        &rows,
    );

    println!(
        "\npaper claims: splits shrink work for every method (most at large σ);\nthe combiner shrinks shuffled volume but not MAP_OUTPUT counters;\nraw comparators avoid deserialization and object instantiation."
    );
}
