//! HTTP integration: a real server on an ephemeral port, exercised by a
//! plain `TcpStream` client — all four endpoints, the index listing,
//! keep-alive reuse, and the 404/400 error paths.

use corpus::{generate, CorpusProfile};
use mapreduce::Cluster;
use ngrams::{Computation, Method, NGramParams};
use serve::{build_index, IndexOptions, StatsIndex, StatsServer};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

/// Send one `GET` over a fresh connection; return `(status, body)`.
fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    parse_response(&response)
}

fn parse_response(raw: &[u8]) -> (u16, String) {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

struct Fixture {
    dir: PathBuf,
    expected: Vec<(String, u64)>,
}

fn build_fixture() -> Fixture {
    let coll = generate(&CorpusProfile::tiny("http-api", 30), 99);
    let cluster = Cluster::new(2);
    let params = NGramParams::new(2, 4);
    let computation = Computation::new(Method::SuffixSigma, &params).input(&coll);
    let expected: Vec<(String, u64)> = computation
        .run(&cluster)
        .expect("compute")
        .grams
        .iter()
        .map(|(g, c)| (coll.dictionary.decode(g.terms()), *c))
        .collect();
    let dir = std::env::temp_dir().join(format!("serve-http-api-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    build_index(
        &cluster,
        &computation,
        &coll.dictionary,
        "http-api",
        &dir,
        &IndexOptions::default(),
    )
    .expect("index build");
    Fixture { dir, expected }
}

#[test]
fn http_endpoints_end_to_end() {
    let fixture = build_fixture();
    let index = Arc::new(StatsIndex::open(&fixture.dir).expect("open index"));
    let mut indexes = HashMap::new();
    indexes.insert("tiny".to_string(), index);
    let server = StatsServer::bind("127.0.0.1:0", indexes)
        .expect("bind")
        .workers(2);
    let addr = server.local_addr();
    let handle = server.spawn().expect("spawn");

    // Index listing at the root.
    let (status, body) = get(addr, "/");
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"indexes":["tiny"]}"#);

    // ngram: every computed gram is served with its exact count.
    for (text, count) in fixture.expected.iter().take(10) {
        let q: String = text.replace(' ', "+");
        let (status, body) = get(addr, &format!("/v1/tiny/ngram?q={q}"));
        assert_eq!(status, 200, "gram {text:?}");
        assert!(
            body.contains(&format!("\"count\":{count}")),
            "gram {text:?}: {body}"
        );
        assert!(body.contains("\"found\":true"), "{body}");
    }
    // ngram miss: well-formed 200 with found=false.
    let (status, body) = get(addr, "/v1/tiny/ngram?q=no+such+gram+here");
    assert_eq!(status, 200);
    assert!(body.contains("\"found\":false"), "{body}");

    // prefix: returns extensions of the first term, bounded by limit.
    let first_term = fixture.expected[0]
        .0
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    let (status, body) = get(addr, &format!("/v1/tiny/prefix?q={first_term}&limit=3"));
    assert_eq!(status, 200);
    assert!(body.contains("\"results\":["), "{body}");
    assert!(body.contains(&format!("\"q\":\"{first_term}\"")), "{body}");

    // topk: k rows, counts non-increasing.
    let (status, body) = get(addr, "/v1/tiny/topk?k=5");
    assert_eq!(status, 200);
    let counts: Vec<u64> = body
        .match_indices("\"count\":")
        .map(|(i, _)| {
            body[i + 8..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap()
        })
        .collect();
    assert_eq!(counts.len(), 5, "{body}");
    assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{body}");

    // stats: manifest fields and cache telemetry.
    let (status, body) = get(addr, "/v1/tiny/stats");
    assert_eq!(status, 200);
    for needle in [
        "\"index\":\"tiny\"",
        "\"method\":\"SUFFIX-SIGMA\"",
        "\"count_mode\":\"cf\"",
        "\"tau\":2",
        "\"entries\":",
        "\"cache\":{",
        "\"hit_rate\":",
    ] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }

    // Error paths: unknown index and endpoint → 404, bad params → 400,
    // non-GET → 405.
    let (status, body) = get(addr, "/v1/nope/ngram?q=a");
    assert_eq!(status, 404);
    assert!(body.contains("unknown index"), "{body}");
    let (status, _) = get(addr, "/v1/tiny/nope");
    assert_eq!(status, 404);
    let (status, body) = get(addr, "/v1/tiny/ngram");
    assert_eq!(status, 400);
    assert!(body.contains("missing query parameter q"), "{body}");
    let (status, _) = get(addr, "/v1/tiny/topk?k=0");
    assert_eq!(status, 400);
    let (status, _) = get(addr, "/v1/tiny/prefix?q=a&limit=notanumber");
    assert_eq!(status, 400);
    let (status, _) = {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /v1/tiny/ngram?q=a HTTP/1.1\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        parse_response(&raw)
    };
    assert_eq!(status, 405);

    // Keep-alive: two requests over one connection.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET / HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
        let mut buf = [0u8; 4096];
        let n = stream.read(&mut buf).unwrap();
        let first = String::from_utf8_lossy(&buf[..n]).into_owned();
        assert!(first.contains("connection: keep-alive"), "{first}");
        write!(
            stream,
            "GET /v1/tiny/stats HTTP/1.1\r\nconnection: close\r\n\r\n"
        )
        .unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        let second = String::from_utf8_lossy(&rest);
        assert!(second.contains("\"entries\":"), "{second}");
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&fixture.dir);
}
