//! Figure 4 — varying the minimum collection frequency τ at σ = 5:
//! wallclock, bytes transferred, and records for every method.
//!
//! Paper shapes: at high τ SUFFIX-σ ties the best competitor
//! (APRIORI-SCAN); as τ drops, both APRIORI methods blow up steeply while
//! SUFFIX-σ stays flat and transfers the fewest records.

use bench::{measure, Outcome};
use ngrams::{Method, NGramParams};

fn sweep(cluster: &mapreduce::Cluster, coll: &corpus::Collection, taus: &[u64]) {
    let mut wall_rows = Vec::new();
    let mut byte_rows = Vec::new();
    let mut record_rows = Vec::new();
    for &method in &Method::ALL {
        let mut wall = vec![method.name().to_string()];
        let mut bytes = vec![method.name().to_string()];
        let mut records = vec![method.name().to_string()];
        for &tau in taus {
            let outcome = measure(cluster, coll, method, &NGramParams::new(tau, 5));
            match outcome {
                Outcome::Done(m) => {
                    wall.push(bench::fmt_duration(m.wall));
                    bytes.push(bench::fmt_bytes(m.bytes));
                    records.push(bench::fmt_count(m.records));
                }
                Outcome::Dnf(_) => {
                    wall.push("DNF".into());
                    bytes.push("-".into());
                    records.push("-".into());
                }
            }
        }
        wall_rows.push(wall);
        byte_rows.push(bytes);
        record_rows.push(records);
    }
    let headers: Vec<String> = std::iter::once("method".to_string())
        .chain(taus.iter().map(|t| format!("τ={t}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    bench::print_table(
        &format!("Figure 4 ({}): wallclock vs τ (σ=5)", coll.name),
        &header_refs,
        &wall_rows,
    );
    bench::print_table(
        &format!("Figure 4 ({}): bytes transferred vs τ", coll.name),
        &header_refs,
        &byte_rows,
    );
    bench::print_table(
        &format!("Figure 4 ({}): # records vs τ", coll.name),
        &header_refs,
        &record_rows,
    );
}

fn main() {
    let scale = bench::scale_from_env();
    let cluster = bench::cluster_from_env();
    let (nyt, cw) = bench::corpora(scale);
    println!("cluster: {} slots", cluster.slots());

    // Paper: τ ∈ {10 … 100k} on NYT, {100 … 1M} on CW; scaled geometric
    // ladders with the same span of selectivity.
    sweep(&cluster, &nyt, &[2, 5, 10, 100, 1000]);
    sweep(&cluster, &cw, &[5, 10, 100, 1000, 10000]);

    println!(
        "\npaper shapes: APRIORI methods grow steeply as τ falls (dictionary/join\nwork explodes); SUFFIX-σ flat, fewest records at low τ; ties APRIORI-SCAN at high τ."
    );
}
